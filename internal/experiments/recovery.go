package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Recovery-timeline scenario parameters: a quarter of the switches fail
// together at 2 ms and all come back at 6 ms, while a half-shuffle of
// transport flows is in progress. The series window width divides both fault
// times exactly, so whole 1 ms windows aggregate into fault epochs — the
// invariant TestRecoverySeriesMatchesTimeline pins.
const (
	recoveryBurstAtSec      = 2e-3
	recoveryRepairSec       = 6e-3
	recoveryFlowBytes       = 256 << 10
	recoverySeed            = 26
	recoverySeriesWindowSec = 1e-3
)

// recoverySubjects are the structures the recovery figure compares. All three
// implement topology.FaultRouter, so timed-out flows recompile routes around
// the dead switches.
func recoverySubjects() []struct {
	name string
	t    topology.Topology
} {
	return []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
}

// recoveryScenario builds the scenario inputs for one structure: the seeded
// half-shuffle of flowBytes-sized flows and the burst-and-repair fault plan.
func recoveryScenario(t topology.Topology, flowBytes int64) ([]traffic.Flow, *failure.FaultPlan, error) {
	net := t.Network()
	n := net.NumServers()
	rng := rand.New(rand.NewSource(recoverySeed))
	flows, err := traffic.Shuffle(n, n/2, n/2, rng)
	if err != nil {
		return nil, nil, err
	}
	for i := range flows {
		flows[i].Bytes = flowBytes
	}
	nKill := len(net.Switches()) / 4
	if nKill < 1 {
		nKill = 1
	}
	plan, err := failure.Burst(net, failure.Switches, nKill, recoveryBurstAtSec, recoveryRepairSec, rng)
	if err != nil {
		return nil, nil, err
	}
	return flows, plan, nil
}

// runRecovery executes the scenario on one structure and returns the result
// together with its per-epoch timeline (pre-fault, outage, post-repair) and
// the 1 ms time-series curves of the same run.
func runRecovery(t topology.Topology) (packetsim.TransportResult, *packetsim.Timeline, *obs.Series, error) {
	flows, plan, err := recoveryScenario(t, recoveryFlowBytes)
	if err != nil {
		return packetsim.TransportResult{}, nil, nil, err
	}
	cfg := packetsim.DefaultTransport()
	cfg.Faults = plan
	cfg.Timeline = &packetsim.Timeline{}
	cfg.Link.Series = obs.NewSeries(int64(recoverySeriesWindowSec * 1e9))
	res, err := packetsim.RunTransport(t, flows, cfg)
	return res, cfg.Timeline, cfg.Link.Series, err
}

// seriesWindow is one series window of an experiment's curves, folded across
// the transport engine's tracks.
type seriesWindow struct {
	goodputBytes int64
	dropFault    int64
	dropStale    int64
	dropTail     int64
	rtx          int64
	reroutes     int64
	failovers    int64
}

// foldSeriesWindows folds a run's series points into dense per-window rows:
// windows with no activity appear as zeros, so the curves keep a contiguous
// time axis from 0 to the last active window.
func foldSeriesWindows(s *obs.Series) []seriesWindow {
	pts := s.Points()
	max := int64(-1)
	for _, pt := range pts {
		if pt.Window > max {
			max = pt.Window
		}
	}
	rows := make([]seriesWindow, max+1)
	for _, pt := range pts {
		r := &rows[pt.Window]
		switch pt.Track {
		case packetsim.SeriesGoodputBytes:
			r.goodputBytes += pt.Sum
		case packetsim.SeriesDropFault:
			r.dropFault += pt.Sum
		case packetsim.SeriesDropStale:
			r.dropStale += pt.Sum
		case packetsim.SeriesDropTail:
			r.dropTail += pt.Sum
		case packetsim.SeriesRetransmits:
			r.rtx += pt.Sum
		case packetsim.SeriesReroutes:
			r.reroutes += pt.Sum
		case packetsim.SeriesFailovers:
			r.failovers += pt.Sum
		}
	}
	return rows
}

// F26RecoveryTimeline regenerates the recovery figure: goodput and
// availability per fault epoch as a switch burst hits mid-run and is later
// repaired, followed by the same runs resolved into 1 ms series windows. The
// outage epoch shows the goodput dip and the fault/stale drop burst; the
// post-repair epoch shows the recovery; the windowed section shows when
// within each epoch the dip bottoms out and the reroute/retransmit bursts
// fire.
func F26RecoveryTimeline(w io.Writer) error {
	subjects := recoverySubjects()
	type out struct {
		res    packetsim.TransportResult
		tl     *packetsim.Timeline
		series *obs.Series
	}
	outs := make([]out, len(subjects))
	// The pool runs the simulations; formatting stays serial because the
	// rows-per-subject count varies with each timeline's epoch count.
	if _, err := sweepRows(len(subjects), func(i int) (string, error) {
		res, tl, series, err := runRecovery(subjects[i].t)
		outs[i] = out{res, tl, series}
		return "", err
	}); err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintln(tw, "structure\tepoch\twindow(ms)\tgoodput(Gb/s)\tavail\tdrops fault/stale/tail\treroutes\trtx\tflows done")
	labels := []string{"pre-fault", "outage", "post-repair"}
	for i, sub := range subjects {
		for j, e := range outs[i].tl.Epochs {
			label := fmt.Sprintf("epoch %d", j)
			if j < len(labels) {
				label = labels[j]
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f-%.2f\t%.3f\t%.4f\t%d/%d/%d\t%d\t%d\t%d\n",
				sub.name, label, e.StartSec*1e3, e.EndSec*1e3,
				e.GoodputBps()*8/1e9, e.Availability(),
				e.DroppedFault, e.DroppedStale, e.DroppedTail,
				e.Reroutes, e.Retransmits, e.CompletedFlows)
		}
		res := outs[i].res
		fmt.Fprintf(tw, "%s\ttotal\t0.00-%.2f\t%.3f\t\t%d/%d/-\t%d\t%d\t%d (%d failed)\n",
			sub.name, res.MakespanSec*1e3, res.GoodputBps*8/1e9,
			res.DroppedFault, res.DroppedStale, res.Reroutes, res.Retransmits,
			res.CompletedFlows, res.FailedFlows)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\ntime series (%.0f ms windows):\n", recoverySeriesWindowSec*1e3)
	tw = table(w)
	fmt.Fprintln(tw, "structure\twindow(ms)\tgoodput(Gb/s)\tdrops fault/stale/tail\treroutes\trtx")
	for i, sub := range subjects {
		for win, r := range foldSeriesWindows(outs[i].series) {
			fmt.Fprintf(tw, "%s\t%d-%d\t%.3f\t%d/%d/%d\t%d\t%d\n",
				sub.name, win, win+1,
				float64(r.goodputBytes)/recoverySeriesWindowSec*8/1e9,
				r.dropFault, r.dropStale, r.dropTail, r.reroutes, r.rtx)
		}
	}
	return tw.Flush()
}

// recoverySmokeFlowBytes is the flow size WriteRecoveryRun uses: the full
// 256 KB figure run profiles tens of thousands of conservative shard windows
// (a ~35 MB record), so the committed fixture and CI smoke trace run the same
// scenario — same burst, repair, seed, and topology — at smoke scale.
const recoverySmokeFlowBytes = 8 << 10

// WriteRecoveryRun executes the F26 scenario (at smoke-scale flow sizes) on
// the ABCCC subject with the sharded transport engine and every telemetry
// layer armed — trace, series, and the shard runtime profiler — and writes
// the combined run-record JSONL to w. cmd/obsreport's committed fixture and
// the CI smoke trace both come from here, so the format the report tool is
// tested against is exactly what the engine emits. Workers is pinned to 1 for
// a deterministic trace order.
func WriteRecoveryRun(w io.Writer) error {
	const shards, workers = 4, 1
	sub := recoverySubjects()[0]
	flows, plan, err := recoveryScenario(sub.t, recoverySmokeFlowBytes)
	if err != nil {
		return err
	}
	cfg := packetsim.DefaultTransport()
	cfg.Faults = plan
	cfg.Link.Series = obs.NewSeries(int64(recoverySeriesWindowSec * 1e9))
	cfg.Link.Trace = obs.NewTracer(1024)
	prof := obs.NewShardProfile()
	if _, err := packetsim.RunTransportSharded(sub.t, flows, cfg,
		packetsim.ShardOpts{Shards: shards, Workers: workers, Profile: prof}); err != nil {
		return err
	}
	meta := obs.RunMeta{
		Label:          "F26/" + sub.name,
		Engine:         "transport-sharded",
		Topology:       sub.name,
		Workload:       fmt.Sprintf("half-shuffle, %d B flows, seed %d", recoverySmokeFlowBytes, recoverySeed),
		Shards:         shards,
		Workers:        workers,
		SeriesWindowNs: int64(recoverySeriesWindowSec * 1e9),
		Trace:          true,
		Series:         true,
		Profile:        true,
	}
	return obs.WriteRun(w, meta, cfg.Link.Trace, cfg.Link.Series, prof)
}
