package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSurvSmokeDeterministic is the CI smoke check (make surv-smoke): the
// smoke-scale survivability figure — same sections, a quarter of the trials —
// must be byte-deterministic across runs and across GOMAXPROCS settings
// (the trial pool writes indexed slots, so parallelism must never show).
func TestSurvSmokeDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := f31(&buf, survSmokeScale); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	if !bytes.Equal(a, render()) {
		t.Error("two smoke-scale survivability figures differ byte-for-byte")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := render()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(a, serial) {
		t.Error("GOMAXPROCS=1 survivability figure differs from parallel run")
	}
	for _, want := range []string{"MTTF(y)", "pareto", "criticality", "first partition", "98304 servers"} {
		if !strings.Contains(string(a), want) {
			t.Errorf("smoke figure missing section marker %q", want)
		}
	}
}

// TestSurvRunRecordLoads pins the surv-only run record WriteSurvRun emits
// for cmd/obsreport: a meta header and series points carrying only surv_*
// tracks — no trace or shard-profile sections — so the tool's generic
// track-rendering fallback is what the committed fixture exercises.
func TestSurvRunRecordLoads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSurvRun(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !recs.HasMeta || recs.Meta.Engine != "surv" || !recs.Meta.Series {
		t.Errorf("unexpected meta: %+v", recs.Meta)
	}
	if len(recs.Series) == 0 {
		t.Error("run record has no series points")
	}
	if len(recs.Events) != 0 || len(recs.ShardWindows) != 0 {
		t.Errorf("surv record should carry series only, got %d events and %d shard windows",
			len(recs.Events), len(recs.ShardWindows))
	}
	for _, pt := range recs.Series {
		if !strings.HasPrefix(pt.Track, "surv_") {
			t.Errorf("non-surv track %q in surv run record", pt.Track)
		}
	}
	if recs.Unknown != 0 {
		t.Errorf("%d unknown record lines in a freshly written file", recs.Unknown)
	}
}
