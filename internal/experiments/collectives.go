package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// F23Collectives regenerates the collective-communication table (the GBC3
// extension set): one-to-all broadcast, all-to-one gather (with in-network
// aggregation), one-to-many multicast to a rack-sized subset, and the
// pipelined broadcast speedup from the edge-disjoint forest at r = 1.
func F23Collectives(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tbroadcast depth\tgather depth\tmulticast(8) links\tforest trees\tpipelined speedup")
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 1, P: 3},
		{N: 4, K: 2, P: 4},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		root := net.Server(0)

		bDepth, err := tp.BroadcastDepth(root)
		if err != nil {
			return err
		}
		gDepth, err := tp.GatherDepth(root)
		if err != nil {
			return err
		}
		// Multicast to the 8 highest-numbered servers (a far "rack").
		servers := net.Servers()
		dsts := servers[len(servers)-8:]
		mc, err := tp.Multicast(root, dsts)
		if err != nil {
			return err
		}
		mcEdges := map[[2]int]bool{}
		for _, p := range mc {
			for i := 1; i < len(p); i++ {
				mcEdges[[2]int{p[i-1], p[i]}] = true
			}
		}
		forest, err := tp.BroadcastForest(root)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1fx\n",
			net.Name(), net.NumServers(), bDepth, gDepth, len(mcEdges),
			len(forest), float64(len(forest)))
	}
	return tw.Flush()
}
