package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/emu"
)

// latQuantile returns the q-quantile of a completed-request latency
// histogram (rounds), by nearest rank.
func latQuantile(hist []int, total int, q float64) int {
	if total == 0 || len(hist) == 0 {
		return 0 // one-way workloads (shuffle) track no request latency
	}
	rank := int(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for r, c := range hist {
		seen += c
		if seen >= rank {
			return r
		}
	}
	return len(hist) - 1
}

// F29ServingWorkloads drives the sharded actor engine with production-shaped
// serving traffic — RPC fan-out with deadlines and retries, partition-
// aggregate incast, storage shuffle — on a healthy fabric, under dead
// servers, and with starved rings. The table shows the request-level
// outcomes (completion, timeouts, retries, latency quantiles in engine
// rounds) next to the message-level conservation audit: injected always
// equals delivered plus per-cause drops, whatever the clients do. Results
// are seeded and round-based, so the table is byte-identical on every run.
func F29ServingWorkloads(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "scenario\trequests\tcompleted\ttimed out\tretries\tp50 lat\tp99 lat\tmessages\tinjected\tdelivered\tdropped\taccounted")

	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2})
	net := tp.Network()
	servers := net.Servers()
	// Three dead servers: in a server-centric structure servers relay
	// traffic, so even a few dead ones cut many static routes — requests
	// crossing them burn their retries and time out.
	dead := []int{servers[1], servers[len(servers)/2], servers[len(servers)-2]}

	cases := []struct {
		name string
		w    emu.Workload
		opts []emu.Option
	}{
		{"rpc fanout=4 healthy",
			emu.Workload{Kind: emu.RPCFanout, Requests: 200, Fanout: 4, RetryBudget: 1, Seed: 29}, nil},
		{"rpc fanout=4, 3 servers dead",
			emu.Workload{Kind: emu.RPCFanout, Requests: 200, Fanout: 4, RetryBudget: 1, Seed: 29},
			[]emu.Option{emu.WithFailedNodes(dead...)}},
		{"incast fanin=48 healthy",
			emu.Workload{Kind: emu.IncastWave, Requests: 6, Fanout: 48, RetryBudget: 2, Seed: 29}, nil},
		{"incast fanin=48, 4-slot rings",
			emu.Workload{Kind: emu.IncastWave, Requests: 6, Fanout: 48, RetryBudget: 2, Seed: 29},
			[]emu.Option{emu.WithInboxSize(4)}},
		{"shuffle 24x12",
			emu.Workload{Kind: emu.StorageShuffle, Mappers: 24, Reducers: 12, Seed: 29}, nil},
	}
	for _, c := range cases {
		ws, err := emu.RunWorkload(tp, c.w, c.opts...)
		if err != nil {
			return err
		}
		dropped := ws.DroppedFailed + ws.DroppedTTL + ws.DroppedOverflow
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			c.name, ws.Requests, ws.Completed, ws.TimedOut, ws.RetriesSent,
			latQuantile(ws.LatencyHistogram, ws.Completed, 0.50),
			latQuantile(ws.LatencyHistogram, ws.Completed, 0.99),
			ws.Messages, ws.Injected, ws.Delivered, dropped, ws.Accounted())
	}
	return tw.Flush()
}
