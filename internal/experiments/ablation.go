package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/flowsim"
	"repro/internal/metrics"
	"repro/internal/traffic"
)

// F13PortTradeoff regenerates the tunability ablation, the abstract's "suits
// many different applications by fine tuning its parameters" claim: at fixed
// (n, k), sweeping the server port count p trades server population against
// diameter, per-server bisection, per-server CapEx and per-server
// all-to-all throughput. p=2 maximizes servers per switch dollar; larger p
// buys latency and bandwidth.
func F13PortTradeoff(w io.Writer) error {
	model := cost.Default()
	tw := table(w)
	fmt.Fprintln(tw, "p\tservers\tr\tdiam(hops)\tASPL(links)\tbisec/srv\t$/srv\ta2a rate/srv")
	for _, p := range []int{2, 3, 4, 5} {
		cfg := core.Config{N: 4, K: 2, P: p}
		if cfg.Validate() != nil {
			continue
		}
		tp := core.MustBuild(cfg)
		net := tp.Network()
		props := tp.Properties()
		aspl, err := metrics.ASPL(net, 24, rand.New(rand.NewSource(3)))
		if err != nil {
			return err
		}
		exactCut := metrics.BisectionCut(net)
		flows := traffic.AllToAll(net.NumServers())
		paths, err := flowsim.RoutePaths(tp, flows)
		if err != nil {
			return err
		}
		asg, err := flowsim.MaxMinFair(net, paths)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\t%.4f\t%.2f\t%.4f\n",
			p, props.Servers, cfg.ServersPerCrossbar(), props.Diameter, aspl,
			float64(exactCut)/float64(props.Servers),
			model.CapEx(props).PerServer(props.Servers),
			asg.ABT()/float64(props.Servers))
	}
	return tw.Flush()
}
