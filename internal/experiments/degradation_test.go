package experiments

import (
	"bytes"
	"testing"
)

// TestGracefulDegradationCurve pins the shape the figure exists to show: on
// ABCCC, goodput at a healthy 0% rate beats goodput at the heaviest rate in
// both modes (degradation is real), and at the heaviest rate the multipath
// run fails over at least once while the reactive run records none.
func TestGracefulDegradationCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep points are slow; skipped with -short")
	}
	sub := degradationSubjects()[0]
	heaviest := failureRates[len(failureRates)-1]

	healthy, err := degradationPoint(sub, 0, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Failovers != 0 || healthy.FailedFlows != 0 {
		t.Fatalf("healthy multipath run not clean: %+v", healthy)
	}
	mp, err := degradationPoint(sub, heaviest, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	reactive, err := degradationPoint(sub, heaviest, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mp.GoodputBps >= healthy.GoodputBps {
		t.Errorf("no degradation: %.0f%% failures goodput %.0f >= healthy %.0f",
			heaviest*100, mp.GoodputBps, healthy.GoodputBps)
	}
	if mp.Failovers == 0 {
		t.Errorf("%.0f%% of switches dead but multipath never failed over", heaviest*100)
	}
	if reactive.Failovers != 0 || reactive.PathSwitches != 0 {
		t.Errorf("reactive run reports multipath activity: %+v", reactive)
	}
}

// TestGracefulDegradationDeterministic: same seed, byte-identical figure.
func TestGracefulDegradationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is slow; skipped with -short")
	}
	var a, b bytes.Buffer
	if err := F27GracefulDegradation(&a); err != nil {
		t.Fatal(err)
	}
	if err := F27GracefulDegradation(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two F27 runs differ byte-for-byte")
	}
}
