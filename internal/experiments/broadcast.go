package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// F14Broadcast regenerates the one-to-all figure (the GBC3 extension): the
// depth of the broadcast tree in switch hops, the maximum per-link stress
// (1 for a true tree), and the total link transmissions, against the naive
// alternative of unicasting to every server separately.
func F14Broadcast(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\ttree depth(hops)\ttree links\ttree max stress\tunicast links\tunicast max load\tdisjoint trees")
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 1, P: 3},
		{N: 4, K: 2, P: 4},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		root := net.Server(0)
		tree, err := tp.BroadcastTree(root)
		if err != nil {
			return err
		}
		depth := 0
		treeEdges := map[[2]int]bool{}
		for _, p := range tree {
			if h := p.SwitchHops(net); h > depth {
				depth = h
			}
			for i := 1; i < len(p); i++ {
				treeEdges[[2]int{p[i-1], p[i]}] = true
			}
		}

		// Naive alternative: a separate unicast route per destination.
		var uniPaths []topology.Path
		for _, dst := range net.Servers() {
			if dst == root {
				continue
			}
			p, err := tp.Route(root, dst)
			if err != nil {
				return err
			}
			uniPaths = append(uniPaths, p)
		}
		uniLoad := metrics.LinkLoads(net, uniPaths)

		// Each tree edge carries the broadcast exactly once (stress 1 by the
		// tree property, verified by the core test suite). The forest column
		// is the number of edge-disjoint trees available for pipelining a
		// large payload (r = 1 instances get one per address level).
		forest, err := tp.BroadcastForest(root)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			net.Name(), net.NumServers(), depth, len(treeEdges), 1,
			uniLoad.UsedLinks, uniLoad.MaxLoad, len(forest))
	}
	return tw.Flush()
}
