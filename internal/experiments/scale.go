package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/packetsim"
	"repro/internal/traffic"
)

// Strong-scaling equivalence scenario: a shuffle workload on a mid-size
// ABCCC driven through the sharded engines at increasing shard counts. The
// claim under test is the sharded engine's contract — the partition changes
// where events are processed, never what happens — so the table reports the
// simulation results per shard count together with an explicit
// identical-to-serial marker. Wall-clock speedup is measured by the bench
// suite (cmd/benchsuite -scale), not here: experiment output must be
// deterministic, and timings never are.
const (
	scaleFlowBytes = 64 << 10
	scaleSeed      = 28
	scaleBurstAt   = 1e-4
	scaleRepairAt  = 2e-3
)

// scaleShardCounts is the shard axis: serial, even splits, and a prime count
// that divides nothing evenly.
var scaleShardCounts = []int{1, 2, 4, 7}

// F28ShardScaling regenerates the sharded-engine equivalence table: packet
// and transport runs, fault-free and through a switch burst with multipath
// failover, at every shard count. Every row of a block must repeat the
// shards=1 numbers exactly; the "identical" column makes the check visible
// in the output itself.
func F28ShardScaling(w io.Writer) error {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2})
	net := tp.Network()
	n := net.NumServers()
	rng := rand.New(rand.NewSource(scaleSeed))
	flows, err := traffic.Shuffle(n, n/8, n/8, rng)
	if err != nil {
		return err
	}
	for i := range flows {
		flows[i].Bytes = scaleFlowBytes
	}
	nKill := len(net.Switches()) / 4
	plan, err := failure.Burst(net, failure.Switches, nKill, scaleBurstAt, scaleRepairAt, rng)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "ABCCC(4,2,2): %d servers, %d flows x %d KiB shuffle, shards sweep %v\n\n",
		n, len(flows), scaleFlowBytes>>10, scaleShardCounts)

	tw := table(w)
	fmt.Fprintln(tw, "engine\tscenario\tshards\tdelivered/done\tdrops tail/fault\tp99(us)\tmakespan(ms)\tidentical")

	// Packet engine, fault-free and under the burst.
	for _, withFaults := range []bool{false, true} {
		scenario := "clean"
		var base packetsim.Result
		for i, s := range scaleShardCounts {
			cfg := packetsim.Default()
			if withFaults {
				scenario = "burst"
				cfg.Faults = plan
			}
			res, err := packetsim.RunSharded(tp, flows, cfg, packetsim.ShardOpts{Shards: s})
			if err != nil {
				return err
			}
			if i == 0 {
				base = res
			}
			fmt.Fprintf(tw, "packet\t%s\t%d\t%d\t%d/%d\t%.1f\t%.3f\t%s\n",
				scenario, s, res.Delivered, res.Dropped, res.DroppedFault,
				res.P99LatencySec*1e6, res.MakespanSec*1e3, mark(res == base))
		}
	}

	// Transport engine, clean and burst+multipath.
	for _, mode := range []string{"clean", "burst+mp"} {
		var base packetsim.TransportResult
		for i, s := range scaleShardCounts {
			cfg := packetsim.DefaultTransport()
			if mode != "clean" {
				cfg.Faults = plan
				cfg.Multipath = true
			}
			res, err := packetsim.RunTransportSharded(tp, flows, cfg, packetsim.ShardOpts{Shards: s})
			if err != nil {
				return err
			}
			if i == 0 {
				base = res
			}
			fmt.Fprintf(tw, "transport\t%s\t%d\t%d\t-/%d\t%.1f\t%.3f\t%s\n",
				mode, s, res.CompletedFlows, res.DroppedFault,
				res.P99FCTSec*1e6, res.MakespanSec*1e3, mark(res == base))
		}
	}
	return tw.Flush()
}

// mark renders an equivalence check as a stable table cell.
func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
