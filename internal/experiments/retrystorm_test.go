package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/svc"
)

// cellByKey finds one grid cell by (policy, outage fraction).
func cellByKey(cells []*stormCell, pol svc.Policy, frac float64) *stormCell {
	for _, c := range cells {
		if c.policy == pol && c.frac == frac {
			return c
		}
	}
	return nil
}

// TestRetryStormCollapseAndMitigation pins the figure's acceptance shape on
// the full-scale grid: unbudgeted retries collapse under a one-switch (4%)
// outage while a budgeted policy holds goodput within 20% of its own
// no-fault baseline, and in every cell the static analyzer's attempt bound
// dominates the measured worst request. Byte determinism (and with it
// GOMAXPROCS-independence of the worker pool) is pinned at smoke scale by
// TestRetryStormSmokeDeterministic — the full grid is too slow to run twice
// under the race detector.
func TestRetryStormCollapseAndMitigation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale storm grid is slow; skipped with -short")
	}
	grid, load, err := retryStormGrid(stormFullScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range append(append([]*stormCell{}, grid...), load...) {
		if int64(c.res.MaxRequestLegs) > c.boundLegs {
			t.Errorf("cell %v/%.0f%%/%.0frps: measured %d legs > analyzer bound %d",
				c.policy, c.frac*100, c.rate, c.res.MaxRequestLegs, c.boundLegs)
		}
	}

	noneHealthy := cellByKey(grid, svc.PolicyNone, 0)
	noneOutage := cellByKey(grid, svc.PolicyNone, 0.04)
	if noneOutage.res.GoodputRps > 0.6*noneHealthy.res.GoodputRps {
		t.Errorf("no collapse: unbudgeted goodput %.0f under a 4%% outage vs %.0f healthy",
			noneOutage.res.GoodputRps, noneHealthy.res.GoodputRps)
	}
	if noneOutage.res.Retries < 10*noneHealthy.res.Retries {
		t.Errorf("no retry storm: %d retries under outage vs %d healthy",
			noneOutage.res.Retries, noneHealthy.res.Retries)
	}
	for _, pol := range []svc.Policy{svc.PolicyFixed, svc.PolicyThrottle} {
		healthy := cellByKey(grid, pol, 0)
		outage := cellByKey(grid, pol, 0.04)
		if outage.res.GoodputRps < 0.8*healthy.res.GoodputRps {
			t.Errorf("%v does not mitigate: goodput %.0f under a 4%% outage vs %.0f healthy",
				pol, outage.res.GoodputRps, healthy.res.GoodputRps)
		}
	}

	var buf bytes.Buffer
	if err := formatRetryStorm(&buf, grid, load); err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(buf.Bytes())) == 0 {
		t.Error("full-scale grid rendered empty")
	}
}

// TestRetryStormSmokeDeterministic is the CI smoke check (make svc-smoke):
// the smoke-scale grid — same scenario, a tenth of the requests — must be
// byte-deterministic across two runs.
func TestRetryStormSmokeDeterministic(t *testing.T) {
	render := func() []byte {
		grid, load, err := retryStormGrid(retryStormSmokeScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := formatRetryStorm(&buf, grid, load); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("two smoke-scale storm grids differ byte-for-byte")
	}
	if len(bytes.TrimSpace(a)) == 0 {
		t.Error("smoke grid rendered empty")
	}
}

// TestRetryStormRunRecordLoads pins the svc-only run record WriteRetryStormRun
// emits for cmd/obsreport: a meta header, series points carrying only svc_*
// tracks, and no trace or shard-profile sections.
func TestRetryStormRunRecordLoads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRetryStormRun(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !recs.HasMeta || recs.Meta.Engine != "svc" || !recs.Meta.Series {
		t.Errorf("unexpected meta: %+v", recs.Meta)
	}
	if len(recs.Series) == 0 {
		t.Error("run record has no series points")
	}
	if len(recs.Events) != 0 || len(recs.ShardWindows) != 0 {
		t.Errorf("svc record should carry series only, got %d events and %d shard windows",
			len(recs.Events), len(recs.ShardWindows))
	}
	for _, pt := range recs.Series {
		if len(pt.Track) < 4 || pt.Track[:4] != "svc_" {
			t.Errorf("non-svc track %q in svc run record", pt.Track)
		}
	}
	if recs.Unknown != 0 {
		t.Errorf("%d unknown record lines in a freshly written file", recs.Unknown)
	}
}
