package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
)

// F10ParallelPaths regenerates two path diversity results: the distribution
// of routed path lengths over all pairs (the "near-equal" length claim), and
// the number and length spread of internally disjoint parallel paths the
// construction finds per pair.
func F10ParallelPaths(w io.Writer) error {
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 1, P: 3},
		{N: 4, K: 2, P: 3},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		rng := rand.New(rand.NewSource(5))
		pairs := allPairsCapped(net, 3000, rng)

		hist, err := metrics.PathLengthHistogram(tp, pairs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: routed path length histogram (links -> pairs):\n", net.Name())
		tw := table(w)
		for l, c := range hist {
			if c > 0 {
				fmt.Fprintf(tw, "  %d\t%d\n", l, c)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}

		// Parallel-path stats over a sample of distinct pairs, with the
		// structure-agnostic greedy-graph extraction as the baseline the
		// native construction must match.
		countHist := make(map[int]int)
		var minSpread, maxSpread, samples int
		nativeTotal, greedyTotal := 0, 0
		for _, pr := range pairs[:min(len(pairs), 400)] {
			paths := tp.ParallelPaths(pr[0], pr[1])
			nativeTotal += len(paths)
			greedyTotal += len(net.Graph().GreedyDisjointPaths(pr[0], pr[1], cfg.P+1))
			countHist[len(paths)]++
			lo, hi := 1<<30, 0
			for _, p := range paths {
				if p.Len() < lo {
					lo = p.Len()
				}
				if p.Len() > hi {
					hi = p.Len()
				}
			}
			if len(paths) > 1 {
				minSpread += lo
				maxSpread += hi
				samples++
			}
		}
		fmt.Fprintf(w, "%s: disjoint parallel paths per pair (count -> pairs):\n", net.Name())
		tw = table(w)
		for _, c := range sortedKeys(countHist) {
			fmt.Fprintf(tw, "  %d\t%d\n", c, countHist[c])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if samples > 0 {
			fmt.Fprintf(w, "%s: avg shortest/longest disjoint path: %.2f / %.2f links\n",
				net.Name(), float64(minSpread)/float64(samples), float64(maxSpread)/float64(samples))
		}
		fmt.Fprintf(w, "%s: native parallel paths per pair %.2f vs greedy-graph baseline %.2f\n",
			net.Name(), float64(nativeTotal)/float64(min(len(pairs), 400)),
			float64(greedyTotal)/float64(min(len(pairs), 400)))
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
