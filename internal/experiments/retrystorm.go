package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/svc"
	"repro/internal/topology"
)

// Retry-storm scenario parameters. The load sits just under the fabric's
// service capacity for the 3-tier graph, so the healthy run is stable while
// the extra legs a retry storm injects push it past saturation — the regime
// where mitigation policy, not raw capacity, decides goodput. The 60 ms
// deadline is what separates the policies: unbudgeted immediate retries fit
// ceil(60/10) x ceil(60/5) = 72 attempts under it, a fixed budget only
// (1+3) x (1+3) = 16.
const (
	stormSeed        = 30
	stormDeadlineSec = 60e-3
	stormRatePerSec  = 4000
	stormOutageAtSec = 2e-3
	// stormScale divides the request count; 1 is the full figure, CI smoke
	// uses retryStormSmokeScale.
	stormFullScale       = 1
	retryStormSmokeScale = 10
)

// stormOutages are the swept switch-outage fractions: 0.04 and 0.08 round to
// 1 and 2 of ABCCC(4,1,2)'s 24 switches — at or under the 5% damage level
// the collapse criterion targets.
var stormOutages = []float64{0, 0.04, 0.08}

// stormPolicies is the mitigation sweep order.
var stormPolicies = []svc.Policy{svc.PolicyNone, svc.PolicyFixed, svc.PolicyThrottle, svc.PolicyHedge}

// stormCell is one (policy, outage, rate) run of the storm grid plus the
// static analyzer bounds the runtime must respect.
type stormCell struct {
	policy svc.Policy
	frac   float64
	rate   float64
	res    *svc.Result
	// boundLegs is the analyzer's per-request attempt bound for the cell's
	// policy (AnalyzeUnbudgeted for none, Analyze for the budgeted three);
	// amp is the matching worst-path amplification.
	boundLegs int64
	amp       int64
}

// runStormCell executes one grid cell: the 3-tier graph under the given
// policy and switch-outage fraction. The fault sample is seeded per cell so
// every policy faces the identical outage.
func runStormCell(tp topology.Topology, pol svc.Policy, frac, rate float64, scale int) (*stormCell, error) {
	g := svc.ThreeTier()
	cfg := svc.Config{
		Policy:      pol,
		DeadlineSec: stormDeadlineSec,
		RatePerSec:  rate,
		Requests:    int(rate) / 5 / scale,
		Seed:        stormSeed,
		Transport:   packetsim.DefaultTransport(),
	}
	if frac > 0 {
		plan, err := failure.Downs(tp.Network(), failure.Switches, frac, stormOutageAtSec,
			rand.New(rand.NewSource(stormSeed)))
		if err != nil {
			return nil, err
		}
		cfg.Transport.Faults = plan
	}
	res, err := svc.Run(tp, g, cfg)
	if err != nil {
		return nil, err
	}
	var rep *svc.Report
	if pol == svc.PolicyNone {
		rep, err = svc.AnalyzeUnbudgeted(g, cfg.DeadlineSec)
	} else {
		rep, err = svc.Analyze(g)
	}
	if err != nil {
		return nil, err
	}
	cell := &stormCell{policy: pol, frac: frac, rate: rate, res: res,
		boundLegs: rep.TotalAttemptsBound, amp: rep.MaxAmplification}
	if int64(res.MaxRequestLegs) > cell.boundLegs {
		return nil, fmt.Errorf("experiments: F30 cell %v/%.0f%%: measured %d legs exceeds analyzer bound %d",
			pol, frac*100, res.MaxRequestLegs, cell.boundLegs)
	}
	return cell, nil
}

// retryStormGrid runs both F30 sections: the policy x outage grid at the
// fixed storm load, then the goodput-vs-offered-load section at the single
// failed switch for the unbudgeted and throttled policies. Every cell checks
// the analyzer bound against the measured worst request.
func retryStormGrid(scale int) (grid []*stormCell, load []*stormCell, err error) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	grid = make([]*stormCell, len(stormOutages)*len(stormPolicies))
	loadRates := []float64{2000, 3000, 4000, 5000}
	loadPolicies := []svc.Policy{svc.PolicyNone, svc.PolicyThrottle}
	load = make([]*stormCell, len(loadRates)*len(loadPolicies))
	if _, err = sweepRows(len(grid)+len(load), func(i int) (string, error) {
		var cell *stormCell
		var cerr error
		if i < len(grid) {
			frac := stormOutages[i/len(stormPolicies)]
			pol := stormPolicies[i%len(stormPolicies)]
			cell, cerr = runStormCell(tp, pol, frac, stormRatePerSec, scale)
			grid[i] = cell
		} else {
			j := i - len(grid)
			rate := loadRates[j/len(loadPolicies)]
			pol := loadPolicies[j%len(loadPolicies)]
			cell, cerr = runStormCell(tp, pol, 0.04, rate, scale)
			load[j] = cell
		}
		return "", cerr
	}); err != nil {
		return nil, nil, err
	}
	return grid, load, nil
}

// formatRetryStorm renders both sections. Goodput percentages in the grid
// section are relative to the same policy's no-fault cell, making the
// collapse (none) vs graceful-degradation (fixed, throttle) contrast direct.
func formatRetryStorm(w io.Writer, grid, load []*stormCell) error {
	fmt.Fprintf(w, "3-tier graph on ABCCC(4,1,2): deadline %.0f ms, %.0f req/s, outage at %.0f ms\n",
		stormDeadlineSec*1e3, float64(stormRatePerSec), stormOutageAtSec*1e3)
	tw := table(w)
	fmt.Fprintln(tw, "outage\tpolicy\tdone\tgoodput(rps)\tvs healthy\tretries\tdenied\twasted\tworst legs\tbound\tp99(ms)")
	baseline := map[svc.Policy]float64{}
	for _, c := range grid {
		if c.frac == 0 {
			baseline[c.policy] = c.res.GoodputRps
		}
		rel := ""
		if b := baseline[c.policy]; b > 0 {
			rel = fmt.Sprintf("%.0f%%", 100*c.res.GoodputRps/b)
		}
		fmt.Fprintf(tw, "%.0f%%\t%s\t%d/%d\t%.0f\t%s\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			c.frac*100, c.policy, c.res.Completed, c.res.Requests, c.res.GoodputRps, rel,
			c.res.Retries, c.res.RetriesDenied, c.res.WastedResponses,
			c.res.MaxRequestLegs, c.boundLegs, c.res.P99LatencySec*1e3)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\ngoodput vs offered load at one failed switch (4%):")
	tw = table(w)
	fmt.Fprintln(tw, "offered(rps)\tpolicy\tdone\tgoodput(rps)\tefficiency\tretries\tdenied\tp99(ms)")
	for _, c := range load {
		fmt.Fprintf(tw, "%.0f\t%s\t%d/%d\t%.0f\t%.0f%%\t%d\t%d\t%.2f\n",
			c.rate, c.policy, c.res.Completed, c.res.Requests, c.res.GoodputRps,
			100*c.res.GoodputRps/c.res.OfferedRps, c.res.Retries, c.res.RetriesDenied,
			c.res.P99LatencySec*1e3)
	}
	return tw.Flush()
}

// F30RetryStorm regenerates the retry-storm figure: a 3-tier service graph
// mapped onto ABCCC, swept over switch-outage fraction and mitigation
// policy. Unbudgeted retries (none) turn a one-switch outage into a
// metastable collapse — goodput halves while the worst request fans out into
// dozens of legs — whereas budgeted retries and adaptive throttling hold
// goodput within a fifth of the no-fault baseline. The load section shows
// the same contrast growing with offered load.
func F30RetryStorm(w io.Writer) error {
	grid, load, err := retryStormGrid(stormFullScale)
	if err != nil {
		return err
	}
	return formatRetryStorm(w, grid, load)
}

// WriteRetryStormRun executes one storm cell (throttle policy, one failed
// switch, smoke scale) with the service-layer metrics and series armed and
// writes the run record JSONL to w. The record carries only svc_* tracks —
// no transport telemetry — so cmd/obsreport's generic track rendering is
// what its committed fixture exercises.
func WriteRetryStormRun(w io.Writer) error {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	g := svc.ThreeTier()
	plan, err := failure.Downs(tp.Network(), failure.Switches, 0.04, stormOutageAtSec,
		rand.New(rand.NewSource(stormSeed)))
	if err != nil {
		return err
	}
	series := obs.NewSeries(int64(1e-3 * 1e9)) // 1 ms windows
	metrics := obs.NewRegistry()
	cfg := svc.Config{
		Policy:      svc.PolicyThrottle,
		DeadlineSec: stormDeadlineSec,
		RatePerSec:  stormRatePerSec,
		Requests:    stormRatePerSec / 5 / retryStormSmokeScale,
		Seed:        stormSeed,
		Transport:   packetsim.DefaultTransport(),
		Metrics:     metrics,
		Series:      series,
	}
	cfg.Transport.Faults = plan
	if _, err := svc.Run(tp, g, cfg); err != nil {
		return err
	}
	meta := obs.RunMeta{
		Label:          "F30/ABCCC(4,1,2)",
		Engine:         "svc",
		Topology:       "ABCCC(4,1,2)",
		Workload:       fmt.Sprintf("3-tier graph, throttle policy, 1 switch down, seed %d", stormSeed),
		SeriesWindowNs: int64(1e6),
		Metrics:        true,
		Series:         true,
	}
	return obs.WriteRun(w, meta, nil, series, nil)
}
