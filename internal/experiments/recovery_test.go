package experiments

import (
	"bytes"
	"testing"
)

// TestRecoveryTimelineDipAndRecovery pins the shape the figure exists to
// show: on every structure the outage epoch's goodput dips below the
// pre-fault epoch's, availability recovers after the repair, and no flow is
// permanently lost (failures cost time, not data).
func TestRecoveryTimelineDipAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	for _, sub := range recoverySubjects() {
		res, tl, err := runRecovery(sub.t)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		if len(tl.Epochs) != 3 {
			t.Fatalf("%s: %d epochs, want 3 (pre-fault, outage, post-repair)", sub.name, len(tl.Epochs))
		}
		pre, outage, post := tl.Epochs[0], tl.Epochs[1], tl.Epochs[2]
		if outage.GoodputBps() >= pre.GoodputBps() {
			t.Errorf("%s: no goodput dip: outage %.0f >= pre-fault %.0f",
				sub.name, outage.GoodputBps(), pre.GoodputBps())
		}
		if outage.DroppedFault == 0 {
			t.Errorf("%s: outage epoch saw no fault drops", sub.name)
		}
		if post.DroppedFault != 0 {
			t.Errorf("%s: %d fault drops after repair", sub.name, post.DroppedFault)
		}
		if post.Availability() <= outage.Availability() {
			t.Errorf("%s: availability did not recover: post %.4f <= outage %.4f",
				sub.name, post.Availability(), outage.Availability())
		}
		if res.FailedFlows != 0 {
			t.Errorf("%s: %d flows permanently failed", sub.name, res.FailedFlows)
		}
	}
}

// TestRecoveryTimelineDeterministic: same seed, byte-identical figure.
func TestRecoveryTimelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	var a, b bytes.Buffer
	if err := F26RecoveryTimeline(&a); err != nil {
		t.Fatal(err)
	}
	if err := F26RecoveryTimeline(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two F26 runs differ byte-for-byte")
	}
}
