package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestRecoveryTimelineDipAndRecovery pins the shape the figure exists to
// show: on every structure the outage epoch's goodput dips below the
// pre-fault epoch's, availability recovers after the repair, and no flow is
// permanently lost (failures cost time, not data).
func TestRecoveryTimelineDipAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	for _, sub := range recoverySubjects() {
		res, tl, _, err := runRecovery(sub.t)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		if len(tl.Epochs) != 3 {
			t.Fatalf("%s: %d epochs, want 3 (pre-fault, outage, post-repair)", sub.name, len(tl.Epochs))
		}
		pre, outage, post := tl.Epochs[0], tl.Epochs[1], tl.Epochs[2]
		if outage.GoodputBps() >= pre.GoodputBps() {
			t.Errorf("%s: no goodput dip: outage %.0f >= pre-fault %.0f",
				sub.name, outage.GoodputBps(), pre.GoodputBps())
		}
		if outage.DroppedFault == 0 {
			t.Errorf("%s: outage epoch saw no fault drops", sub.name)
		}
		if post.DroppedFault != 0 {
			t.Errorf("%s: %d fault drops after repair", sub.name, post.DroppedFault)
		}
		if post.Availability() <= outage.Availability() {
			t.Errorf("%s: availability did not recover: post %.4f <= outage %.4f",
				sub.name, post.Availability(), outage.Availability())
		}
		if res.FailedFlows != 0 {
			t.Errorf("%s: %d flows permanently failed", sub.name, res.FailedFlows)
		}
	}
}

// TestRecoverySeriesMatchesTimeline pins the equivalence between the two
// time-resolved views of one run: the 1 ms series windows, aggregated along
// the fault-epoch boundaries (which the window width divides exactly), must
// reproduce the Timeline's per-epoch tallies field for field.
func TestRecoverySeriesMatchesTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	for _, sub := range recoverySubjects() {
		_, tl, series, err := runRecovery(sub.t)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		windows := foldSeriesWindows(series)
		if len(windows) == 0 {
			t.Fatalf("%s: run produced no series windows", sub.name)
		}
		// Each window lies wholly inside one epoch; classify by midpoint so
		// float boundary comparisons have half a window of slack.
		agg := make([]seriesWindow, len(tl.Epochs))
		for w, row := range windows {
			mid := (float64(w) + 0.5) * recoverySeriesWindowSec
			e := len(tl.Epochs) - 1
			for ; e > 0; e-- {
				if tl.Epochs[e].StartSec <= mid {
					break
				}
			}
			a := &agg[e]
			a.goodputBytes += row.goodputBytes
			a.dropFault += row.dropFault
			a.dropStale += row.dropStale
			a.dropTail += row.dropTail
			a.rtx += row.rtx
			a.reroutes += row.reroutes
			a.failovers += row.failovers
		}
		for e, epoch := range tl.Epochs {
			a := agg[e]
			check := func(what string, series, timeline int64) {
				if series != timeline {
					t.Errorf("%s epoch %d: series %s %d != timeline %d",
						sub.name, e, what, series, timeline)
				}
			}
			check("goodput bytes", a.goodputBytes, epoch.DeliveredBytes)
			check("fault drops", a.dropFault, epoch.DroppedFault)
			check("stale drops", a.dropStale, epoch.DroppedStale)
			check("tail drops", a.dropTail, epoch.DroppedTail)
			check("retransmits", a.rtx, epoch.Retransmits)
			check("reroutes", a.reroutes, epoch.Reroutes)
			check("failovers", a.failovers, epoch.Failovers)
		}
	}
}

// TestRecoveryRunRecordLoads pins the run-record export the report tool and
// CI smoke test consume: WriteRecoveryRun's output must load back with its
// meta header and all three telemetry sections populated.
func TestRecoveryRunRecordLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	var buf bytes.Buffer
	if err := WriteRecoveryRun(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !recs.HasMeta {
		t.Error("run record has no meta header")
	}
	if recs.Meta.Engine != "transport-sharded" || !recs.Meta.Series || !recs.Meta.Profile {
		t.Errorf("unexpected meta: %+v", recs.Meta)
	}
	if len(recs.Events) == 0 || len(recs.Series) == 0 || len(recs.ShardWindows) == 0 {
		t.Errorf("sections missing: %d events, %d series points, %d shard windows",
			len(recs.Events), len(recs.Series), len(recs.ShardWindows))
	}
	if recs.Unknown != 0 {
		t.Errorf("%d unknown record lines in a freshly written file", recs.Unknown)
	}
}

// TestRecoveryTimelineDeterministic: same seed, byte-identical figure.
func TestRecoveryTimelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery runs are slow; skipped with -short")
	}
	var a, b bytes.Buffer
	if err := F26RecoveryTimeline(&a); err != nil {
		t.Fatal(err)
	}
	if err := F26RecoveryTimeline(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two F26 runs differ byte-for-byte")
	}
}
