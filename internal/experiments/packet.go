package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F12PacketSim regenerates the packet-level figure: average and p99 latency,
// drop rate and aggregate throughput under (a) a light uniform workload and
// (b) a heavy MapReduce shuffle, on comparable-size instances. Longer
// server-relay paths cost ABCCC latency versus the fat-tree; its extra
// disjoint capacity shows up as lower loss under the shuffle.
func F12PacketSim(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})}, // 32 servers
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"BCube(4,2)", bcube.MustBuild(bcube.Config{N: 4, K: 2})}, // 64 servers
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},   // 16 servers
	}
	light := packetsim.Default()
	light.FlowRateBps = light.LinkBandwidthBps / 4 // 25% offered load per flow
	heavy := packetsim.Default()

	// Workload generation stays serial (it is cheap and its RNG streams
	// define the figure); only the packet simulations fan out on the pool.
	type job struct {
		structure string
		t         topology.Topology
		workload  string
		flows     []traffic.Flow
		cfg       packetsim.Config
	}
	var jobs []job
	for _, b := range builds {
		n := b.t.Network().NumServers()
		rng := rand.New(rand.NewSource(13))
		uniform := traffic.Uniform(n, n/2, rng)
		shuffle, err := traffic.Shuffle(n, n/4, n/4, rng)
		if err != nil {
			return err
		}
		jobs = append(jobs,
			job{b.name, b.t, "uniform-25%", uniform, light},
			job{b.name, b.t, "shuffle-100%", shuffle, heavy})
	}

	rows, err := sweepRows(len(jobs), func(i int) (string, error) {
		j := jobs[i]
		res, err := packetsim.Run(j.t, j.flows, j.cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s\t%s\t%d\t%d\t%.4f\t%.1f\t%.1f\t%.2f\n",
			j.structure, j.workload, res.Delivered, res.Dropped, res.DropRate(),
			res.AvgLatencySec*1e6, res.P99LatencySec*1e6, res.ThroughputBps*8/1e9), nil
	})

	tw := table(w)
	fmt.Fprintln(tw, "structure\tworkload\tdelivered\tdropped\tdrop rate\tavg lat(us)\tp99 lat(us)\tthroughput(Gb/s)")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	if err != nil {
		return err
	}
	return tw.Flush()
}
