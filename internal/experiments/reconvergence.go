package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/emu"
)

// F21Reconvergence measures the distance-vector control plane's dynamics on
// ABCCC: rounds and advertisements to converge from cold start, and to heal
// after a switch failure (detected by its neighbors, withdrawn with the
// bounded-infinity rule). Healing is local: it costs a fraction of cold
// start, and delivery afterwards exactly matches surviving connectivity.
func F21Reconvergence(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "structure\tevent\trounds\tadvertisements\tserved pairs")
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 2, P: 3},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		sess, err := emu.NewDVSession(tp)
		if err != nil {
			return err
		}
		rounds, msgs, err := sess.Converge()
		if err != nil {
			return err
		}
		served := countServed(sess, net.NumServers())
		fmt.Fprintf(tw, "%s\tcold start\t%d\t%d\t%d\n", net.Name(), rounds, msgs, served)

		rng := rand.New(rand.NewSource(41))
		switches := net.Switches()
		for event := 1; event <= 3; event++ {
			victim := switches[rng.Intn(len(switches))]
			if err := sess.FailNode(victim); err != nil {
				return err
			}
			rounds, msgs, err = sess.Converge()
			if err != nil {
				return err
			}
			served = countServed(sess, net.NumServers())
			fmt.Fprintf(tw, "%s\tkill %s\t%d\t%d\t%d\n",
				net.Name(), net.Label(victim), rounds, msgs, served)
		}
	}
	return tw.Flush()
}

// countServed counts ordered server pairs the session can deliver between.
func countServed(sess *emu.DVSession, servers int) int {
	served := 0
	for si := 0; si < servers; si++ {
		for di := 0; di < servers; di++ {
			if si == di {
				continue
			}
			if _, ok := sess.Deliver(si, di); ok {
				served++
			}
		}
	}
	return served
}
