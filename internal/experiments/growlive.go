package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/emu"
)

// F24GrowWhileServing is the capstone of the expandability story: expand a
// running data center without taking it down. A partial ABCCC deployment is
// operated with the distance-vector control plane (absent crossbars are
// simply powered-off nodes); each growth step powers on one more crossbar's
// devices, the plane reconverges — quickly, since integrating new hardware
// is good news — and the table reports rounds to integrate, whether all old
// pairs kept working (zero downtime), and the growing served-pair count.
func F24GrowWhileServing(w io.Writer) error {
	cfg := core.Config{N: 3, K: 1, P: 2} // grows to 9 crossbars / 18 servers
	full := core.MustBuild(cfg)
	net := full.Network()

	// The address space is fully built; deployment state is expressed by
	// powering crossbars on and off, exactly how the physical roll-out
	// behaves (rack delivered, cabled, switched on).
	sess, err := emu.NewDVSession(full)
	if err != nil {
		return err
	}
	crossbarNodes := func(vec int) []int {
		var nodes []int
		for _, s := range net.Servers() {
			if a, err := full.AddrOf(s); err == nil && a.Vec == vec {
				nodes = append(nodes, s)
			}
		}
		// The crossbar's local switch is the switch adjacent to its first
		// server with an 'L' label.
		for _, nb := range net.Graph().Neighbors(nodes[0], nil) {
			if !net.IsServer(nb) && net.Label(nb)[0] == 'L' {
				nodes = append(nodes, nb)
			}
		}
		return nodes
	}

	// Start with only crossbar 0 powered.
	deployed := 1
	for vec := deployed; vec < cfg.NumVectors(); vec++ {
		for _, node := range crossbarNodes(vec) {
			if err := sess.FailNode(node); err != nil {
				return err
			}
		}
	}
	if _, _, err := sess.Converge(); err != nil {
		return err
	}

	served := func() int {
		count := 0
		n := net.NumServers()
		for si := 0; si < n; si++ {
			for di := 0; di < n; di++ {
				if si == di {
					continue
				}
				if _, ok := sess.Deliver(si, di); ok {
					count++
				}
			}
		}
		return count
	}

	tw := table(w)
	fmt.Fprintln(tw, "crossbars on\tintegration rounds\tserved pairs\told pairs kept")
	fmt.Fprintf(tw, "%d\t-\t%d\t-\n", deployed, served())
	for vec := 1; vec < cfg.NumVectors(); vec++ {
		before := served()
		for _, node := range crossbarNodes(vec) {
			if err := sess.ReviveNode(node); err != nil {
				return err
			}
		}
		rounds, _, err := sess.Converge()
		if err != nil {
			return err
		}
		deployed++
		after := served()
		kept := "yes"
		if after < before {
			kept = "NO"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\n", deployed, rounds, after, kept)
	}
	return tw.Flush()
}
