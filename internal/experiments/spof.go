package experiments

import (
	"fmt"
	"io"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/graph"
	"repro/internal/topology"
)

// F22SinglePointsOfFailure counts articulation points — devices whose loss
// disconnects some still-alive pair — in each structure, split by device
// kind. Server-centric structures with multi-homed servers should have
// none; the fat-tree's single-homed servers make every edge switch a single
// point of failure for its rack.
func F22SinglePointsOfFailure(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"ABCCC(4,2,3)", core.MustBuild(core.Config{N: 4, K: 2, P: 3})},
		{"BCCC(4,2)", bccc.MustBuild(bccc.Config{N: 4, K: 2})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"DCell(4,1)", dcell.MustBuild(dcell.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tswitches\tAP servers\tAP switches\thosts behind an AP\tbridge cables")
	for _, b := range builds {
		net := b.t.Network()
		apServers, apSwitches := 0, 0
		exposed := 0
		// Only articulation points that separate *server* pairs matter for
		// the SPOF story (removing an r=1 server merely orphans its stub
		// local switch).
		for _, v := range net.Graph().ArticulationPoints() {
			if !severs(net, v) {
				continue
			}
			if net.IsServer(v) {
				apServers++
				continue
			}
			apSwitches++
			// Hosts severed if this switch dies: its single-homed neighbors.
			for _, nb := range net.Graph().Neighbors(v, nil) {
				if net.IsServer(nb) && net.Graph().Degree(nb) == 1 {
					exposed++
				}
			}
		}
		// Bridge cables whose loss severs a server pair (single-homed host
		// uplinks in the fat-tree; none in the server-centric structures —
		// an r = 1 ABCCC's stub local-switch cables are bridges of the
		// graph but sever no server pair).
		bridges := 0
		for _, e := range net.Graph().Bridges() {
			if seversEdge(net, e) {
				bridges++
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			b.name, net.NumServers(), net.NumSwitches(), apServers, apSwitches, exposed, bridges)
	}
	return tw.Flush()
}

// seversEdge reports whether failing cable e disconnects some server pair.
func seversEdge(net *topology.Network, e int) bool {
	view := graph.NewView(net.Graph())
	view.FailEdge(e)
	servers := net.Servers()
	res := net.Graph().BFS(servers[0], view)
	for _, s := range servers {
		if res.Dist[s] == graph.Unreachable {
			return true
		}
	}
	return false
}

// severs reports whether failing node v disconnects some pair of servers
// (other than v itself).
func severs(net *topology.Network, v int) bool {
	view := graph.NewView(net.Graph())
	view.FailNode(v)
	src := -1
	for _, s := range net.Servers() {
		if s != v {
			src = s
			break
		}
	}
	if src == -1 {
		return false
	}
	res := net.Graph().BFS(src, view)
	for _, s := range net.Servers() {
		if s != v && res.Dist[s] == graph.Unreachable {
			return true
		}
	}
	return false
}
