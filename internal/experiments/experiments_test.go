package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestAllExperimentsRunAndProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if strings.Count(out, "\n") < 2 {
				t.Errorf("%s produced fewer than 2 rows:\n%s", e.ID, out)
			}
		})
	}
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestRunOneIncludesHeader(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("T2")
	if err := RunOne(&buf, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== T2:") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestExpectedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The reconstruction's headline shapes, asserted programmatically:
	// (1) ABCCC expansion touches 0% of the plant, BCube touches 100% of
	//     servers. Covered by core/bcube package tests; here check the
	//     rendered table agrees.
	var buf bytes.Buffer
	if err := F11Expansion(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.0%") {
		t.Errorf("F11 shows no zero-touch expansion:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") && !strings.Contains(out, "50.0%") {
		// BCube touches all servers: servers/(servers+links) of plant.
		if !strings.Contains(out, "BCube") {
			t.Errorf("F11 missing BCube rows:\n%s", out)
		}
	}
}

func TestRunAllWritesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), "== "+e.ID+":") {
			t.Errorf("RunAll missing section %s", e.ID)
		}
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
