package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// F1Diameter regenerates the diameter-vs-size figure: for each structure
// family, instances are swept in size and the analytic diameter (links) is
// reported per server count. ABCCC's diameter grows linearly in k like
// BCCC's, but dividing by p-1 ownership shrinks it toward BCube's; DCell's
// doubles per level; the fat-tree is flat.
func F1Diameter(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tdiam(links)")
	emit := func(p topology.Properties) {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", p.Name, p.Servers, p.DiameterLinks)
	}
	for _, k := range []int{0, 1, 2, 3} {
		for _, p := range []int{2, 3, 4} {
			cfg := core.Config{N: 8, K: k, P: p}
			if cfg.Validate() == nil {
				emit(cfg.Properties())
			}
		}
		emit(bccc.Config{N: 8, K: k}.Properties())
		emit(bcube.Config{N: 8, K: k}.Properties())
		if dc := (dcell.Config{N: 8, K: k}); dc.Validate() == nil {
			emit(dc.Properties())
		}
	}
	for _, k := range []int{8, 16, 24} {
		emit(fattree.Config{K: k}.Properties())
	}
	return tw.Flush()
}

// F2ASPL regenerates the average-path-length figure on built instances:
// the graph's true average shortest path (BFS) against the average and
// worst length of the structure's own routed paths, both in links. Routed
// averages close to BFS averages show the routing algorithms near-optimal.
func F2ASPL(w io.Writer) error {
	rng := rand.New(rand.NewSource(42))
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"ABCCC(4,2,3)", core.MustBuild(core.Config{N: 4, K: 2, P: 3})},
		{"BCCC(4,1)", bccc.MustBuild(bccc.Config{N: 4, K: 1})},
		{"BCube(4,2)", bcube.MustBuild(bcube.Config{N: 4, K: 2})},
		{"DCell(4,1)", dcell.MustBuild(dcell.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tASPL(BFS)\tavg routed\tworst routed\tanalytic diam")
	for _, b := range builds {
		net := b.t.Network()
		aspl, err := metrics.ASPL(net, 0, rng)
		if err != nil {
			return err
		}
		pairs := allPairsCapped(net, 4000, rng)
		avg, worst, err := metrics.AvgRoutedLength(b.t, pairs)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%d\t%d\n",
			b.name, net.NumServers(), aspl, avg, worst, b.t.Properties().DiameterLinks)
	}
	return tw.Flush()
}

// F3Bisection regenerates the bisection-width figure: the analytic digit-cut
// formula against the exact min-cut between the canonical halves (max-flow),
// normalized per server. Per-server bisection is 1/(2r) of line rate for
// ABCCC: increasing p recovers BCube's 1/2.
func F3Bisection(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"ABCCC(4,2,3)", core.MustBuild(core.Config{N: 4, K: 2, P: 3})},
		{"BCCC(4,1)", bccc.MustBuild(bccc.Config{N: 4, K: 1})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
		{"DCell(4,1)", dcell.MustBuild(dcell.Config{N: 4, K: 1})},
	}
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tanalytic cut\texact min-cut\tper server")
	for _, b := range builds {
		props := b.t.Properties()
		exact := metrics.BisectionCut(b.t.Network())
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.4f\n",
			b.name, props.Servers, props.BisectionLinks, exact,
			float64(exact)/float64(props.Servers))
	}
	return tw.Flush()
}

// F4CapEx regenerates the capital-expenditure figure: interconnect CapEx per
// server for each structure at growing scale, under the documented 2015-era
// price model. The orderings — not the absolute dollars — are the result.
func F4CapEx(w io.Writer) error {
	model := cost.Default()
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tswitch $\tNIC $\tcable $\ttotal $\t$/server")
	emit := func(p topology.Properties) {
		b := model.CapEx(p)
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			p.Name, p.Servers, b.Switches, b.NICs, b.Cables, b.Total(), b.PerServer(p.Servers))
	}
	for _, k := range []int{1, 2, 3} {
		for _, p := range []int{2, 3, 4} {
			cfg := core.Config{N: 16, K: k, P: p}
			if cfg.Validate() == nil {
				emit(cfg.Properties())
			}
		}
		emit(bccc.Config{N: 16, K: k}.Properties())
		emit(bcube.Config{N: 16, K: k}.Properties())
	}
	for _, k := range []int{16, 24, 48} {
		emit(fattree.Config{K: k}.Properties())
	}
	return tw.Flush()
}

// allPairsCapped returns all ordered server pairs, or a seeded random sample
// of `cap` pairs when the full set is larger.
func allPairsCapped(net *topology.Network, limit int, rng *rand.Rand) [][2]int {
	servers := net.Servers()
	n := len(servers)
	total := n * (n - 1)
	if total <= limit {
		pairs := make([][2]int, 0, total)
		for _, a := range servers {
			for _, b := range servers {
				if a != b {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
		return pairs
	}
	pairs := make([][2]int, limit)
	for i := range pairs {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		pairs[i] = [2]int{servers[a], servers[b]}
	}
	return pairs
}
