package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// degradationSubject is one structure in the graceful-degradation sweep.
type degradationSubject struct {
	name string
	t    topology.Topology
}

// degradationSubjects mirrors the recovery-figure lineup: ABCCC and BCube
// both expose disjoint parallel paths; fat-tree is the single-NIC control.
func degradationSubjects() []degradationSubject {
	return []degradationSubject{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
}

// Graceful-degradation scenario parameters: a fraction of the switches die
// at 1 ms into a half-shuffle and never recover; the sweep reuses the
// fault-tolerance failure rates (0% .. 20%). The series window divides the
// fault time exactly, so the outage start lands on a window boundary.
const (
	degradationFaultAtSec      = 1e-3
	degradationFlowBytes       = 64 << 10
	degradationSeed            = 27
	degradationSeriesWindowSec = 5e-4
)

// degradationPoint runs the scenario on one structure at one failure rate,
// reactive-only or with the proactive multipath layer. Flows and the fault
// plan are seeded per (structure, rate) so the two modes face the identical
// outage, and the sweep is byte-deterministic. A non-nil series collects the
// run's windowed curves (telemetry never changes the result — pinned by
// TestSeriesArmedKeepsResultsIdentical in packetsim).
func degradationPoint(sub degradationSubject, rate float64, multipath bool, series *obs.Series) (packetsim.TransportResult, error) {
	net := sub.t.Network()
	n := net.NumServers()
	rng := rand.New(rand.NewSource(degradationSeed + int64(1000*rate)))
	flows, err := traffic.Shuffle(n, n/2, n/2, rng)
	if err != nil {
		return packetsim.TransportResult{}, err
	}
	for i := range flows {
		flows[i].Bytes = degradationFlowBytes
	}
	plan, err := failure.Downs(net, failure.Switches, rate, degradationFaultAtSec, rng)
	if err != nil {
		return packetsim.TransportResult{}, err
	}
	cfg := packetsim.DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = multipath
	cfg.Link.Series = series
	// Dead switches never recover: stranded flows must abort, not grind
	// through the full RTO backoff ladder.
	cfg.MaxFlowTimeouts = 8
	return packetsim.RunTransport(sub.t, flows, cfg)
}

// F27GracefulDegradation regenerates the graceful-degradation figure: goodput
// and flow completion as permanent switch failures sweep 0-20%, with the
// reactive-only transport (RTO + RouteAvoiding) side by side against the
// proactive multipath layer on every structure. The "% of healthy" columns
// are each mode's goodput relative to its own zero-failure baseline — the
// degradation curve the title promises. Fat-tree rides along as the
// single-NIC control: with no disjoint paths to precompile, its multipath
// column can only match its reactive one.
func F27GracefulDegradation(w io.Writer) error {
	subjects := degradationSubjects()
	type point struct {
		reactive, mp packetsim.TransportResult
		// Series are armed only at the sweep's worst failure rate; the
		// time-resolved section below compares the two modes there.
		reactiveSeries, mpSeries *obs.Series
	}
	points := make([]point, len(subjects)*len(failureRates))
	worst := len(failureRates) - 1
	seriesWindowNs := int64(degradationSeriesWindowSec * 1e9)
	if _, err := sweepRows(len(points), func(i int) (string, error) {
		sub := subjects[i/len(failureRates)]
		rate := failureRates[i%len(failureRates)]
		p := &points[i]
		if i%len(failureRates) == worst {
			p.reactiveSeries = obs.NewSeries(seriesWindowNs)
			p.mpSeries = obs.NewSeries(seriesWindowNs)
		}
		reactive, err := degradationPoint(sub, rate, false, p.reactiveSeries)
		if err != nil {
			return "", err
		}
		mp, err := degradationPoint(sub, rate, true, p.mpSeries)
		if err != nil {
			return "", err
		}
		p.reactive, p.mp = reactive, mp
		return "", nil
	}); err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintln(tw, "structure\tfail rate\tmode\tgoodput(Gb/s)\t% of healthy\tflows done/failed\tfailovers\tdrops fault/stale")
	for si, sub := range subjects {
		base := points[si*len(failureRates)]
		for ri, rate := range failureRates {
			p := points[si*len(failureRates)+ri]
			row := func(mode string, res, healthy packetsim.TransportResult, failovers string) {
				pct := 0.0
				if healthy.GoodputBps > 0 {
					pct = res.GoodputBps / healthy.GoodputBps * 100
				}
				fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.3f\t%.1f%%\t%d/%d\t%s\t%d/%d\n",
					sub.name, rate*100, mode, res.GoodputBps*8/1e9, pct,
					res.CompletedFlows, res.FailedFlows, failovers,
					res.DroppedFault, res.DroppedStale)
			}
			row("reactive", p.reactive, base.reactive, "-")
			row("multipath", p.mp, base.mp, fmt.Sprintf("%d", p.mp.Failovers))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Time-resolved view of the worst point: the same goodput collapse the
	// sweep table reports, now as per-window curves showing the multipath
	// layer's failover burst absorbing the outage while the reactive mode
	// bleeds fault drops.
	fmt.Fprintf(w, "\ntime series at %.0f%% failures (%.1f ms windows):\n",
		failureRates[len(failureRates)-1]*100, degradationSeriesWindowSec*1e3)
	tw = table(w)
	fmt.Fprintln(tw, "structure\twindow\tgoodput r/m(Gb/s)\tdrops fault r/m\tfailovers(m)")
	for si, sub := range subjects {
		p := points[si*len(failureRates)+worst]
		rw, mw := foldSeriesWindows(p.reactiveSeries), foldSeriesWindows(p.mpSeries)
		n := len(rw)
		if len(mw) > n {
			n = len(mw)
		}
		gbps := func(rows []seriesWindow, i int) float64 {
			if i >= len(rows) {
				return 0
			}
			return float64(rows[i].goodputBytes) / degradationSeriesWindowSec * 8 / 1e9
		}
		cell := func(rows []seriesWindow, i int) seriesWindow {
			if i >= len(rows) {
				return seriesWindow{}
			}
			return rows[i]
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(tw, "%s\t%d\t%.3f/%.3f\t%d/%d\t%d\n",
				sub.name, i, gbps(rw, i), gbps(mw, i),
				cell(rw, i).dropFault, cell(mw, i).dropFault, cell(mw, i).failovers)
		}
	}
	return tw.Flush()
}
