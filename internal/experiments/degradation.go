package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// degradationSubject is one structure in the graceful-degradation sweep.
type degradationSubject struct {
	name string
	t    topology.Topology
}

// degradationSubjects mirrors the recovery-figure lineup: ABCCC and BCube
// both expose disjoint parallel paths; fat-tree is the single-NIC control.
func degradationSubjects() []degradationSubject {
	return []degradationSubject{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
}

// Graceful-degradation scenario parameters: a fraction of the switches die
// at 1 ms into a half-shuffle and never recover; the sweep reuses the
// fault-tolerance failure rates (0% .. 20%).
const (
	degradationFaultAtSec = 1e-3
	degradationFlowBytes  = 64 << 10
	degradationSeed       = 27
)

// degradationPoint runs the scenario on one structure at one failure rate,
// reactive-only or with the proactive multipath layer. Flows and the fault
// plan are seeded per (structure, rate) so the two modes face the identical
// outage, and the sweep is byte-deterministic.
func degradationPoint(sub degradationSubject, rate float64, multipath bool) (packetsim.TransportResult, error) {
	net := sub.t.Network()
	n := net.NumServers()
	rng := rand.New(rand.NewSource(degradationSeed + int64(1000*rate)))
	flows, err := traffic.Shuffle(n, n/2, n/2, rng)
	if err != nil {
		return packetsim.TransportResult{}, err
	}
	for i := range flows {
		flows[i].Bytes = degradationFlowBytes
	}
	plan, err := failure.Downs(net, failure.Switches, rate, degradationFaultAtSec, rng)
	if err != nil {
		return packetsim.TransportResult{}, err
	}
	cfg := packetsim.DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = multipath
	// Dead switches never recover: stranded flows must abort, not grind
	// through the full RTO backoff ladder.
	cfg.MaxFlowTimeouts = 8
	return packetsim.RunTransport(sub.t, flows, cfg)
}

// F27GracefulDegradation regenerates the graceful-degradation figure: goodput
// and flow completion as permanent switch failures sweep 0-20%, with the
// reactive-only transport (RTO + RouteAvoiding) side by side against the
// proactive multipath layer on every structure. The "% of healthy" columns
// are each mode's goodput relative to its own zero-failure baseline — the
// degradation curve the title promises. Fat-tree rides along as the
// single-NIC control: with no disjoint paths to precompile, its multipath
// column can only match its reactive one.
func F27GracefulDegradation(w io.Writer) error {
	subjects := degradationSubjects()
	type point struct {
		reactive, mp packetsim.TransportResult
	}
	points := make([]point, len(subjects)*len(failureRates))
	if _, err := sweepRows(len(points), func(i int) (string, error) {
		sub := subjects[i/len(failureRates)]
		rate := failureRates[i%len(failureRates)]
		reactive, err := degradationPoint(sub, rate, false)
		if err != nil {
			return "", err
		}
		mp, err := degradationPoint(sub, rate, true)
		if err != nil {
			return "", err
		}
		points[i] = point{reactive, mp}
		return "", nil
	}); err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintln(tw, "structure\tfail rate\tmode\tgoodput(Gb/s)\t% of healthy\tflows done/failed\tfailovers\tdrops fault/stale")
	for si, sub := range subjects {
		base := points[si*len(failureRates)]
		for ri, rate := range failureRates {
			p := points[si*len(failureRates)+ri]
			row := func(mode string, res, healthy packetsim.TransportResult, failovers string) {
				pct := 0.0
				if healthy.GoodputBps > 0 {
					pct = res.GoodputBps / healthy.GoodputBps * 100
				}
				fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.3f\t%.1f%%\t%d/%d\t%s\t%d/%d\n",
					sub.name, rate*100, mode, res.GoodputBps*8/1e9, pct,
					res.CompletedFlows, res.FailedFlows, failovers,
					res.DroppedFault, res.DroppedStale)
			}
			row("reactive", p.reactive, base.reactive, "-")
			row("multipath", p.mp, base.mp, fmt.Sprintf("%d", p.mp.Failovers))
		}
	}
	return tw.Flush()
}
