package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// sweepRows runs n independent jobs on a worker pool and returns their
// formatted table rows in index order, so a parallel sweep emits exactly
// what the serial loop would. Jobs must be self-contained — the sweep-heavy
// experiments precompute flows (and their RNG streams) serially and leave
// only the simulator runs to the pool. On failure the rows before the first
// failing index are still returned, matching where a serial loop would have
// stopped.
func sweepRows(n int, job func(i int) (string, error)) ([]string, error) {
	rows := make([]string, n)
	errs := make([]error, n)

	workers := graph.Workers(0, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for p := 0; p < workers; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				rows[i], errs[i] = job(i)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return rows[:i], err
		}
	}
	return rows, nil
}
