package experiments

import (
	"fmt"
	"io"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/hypercube"
	"repro/internal/topology"
)

// T1Properties regenerates the paper's topological-property comparison
// table: one row per structure instance, with the closed-form component
// counts, diameters and bisection widths. Columns follow the BCCC/GBC3
// table conventions; the hop diameter uses each structure's own paper
// convention and DiamLinks is the uniform cable metric.
func T1Properties(w io.Writer) error {
	rows := []topology.Properties{
		core.Config{N: 8, K: 1, P: 2}.Properties(),
		core.Config{N: 8, K: 1, P: 3}.Properties(),
		core.Config{N: 8, K: 2, P: 2}.Properties(),
		core.Config{N: 8, K: 2, P: 3}.Properties(),
		core.Config{N: 8, K: 2, P: 4}.Properties(),
		bccc.Config{N: 8, K: 2}.Properties(),
		bcube.Config{N: 8, K: 2}.Properties(),
		dcell.Config{N: 8, K: 1}.Properties(),
		dcell.Config{N: 8, K: 2}.Properties(),
		fattree.Config{K: 8}.Properties(),
		fattree.Config{K: 16}.Properties(),
		hypercubeProps(9),
	}
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tswitches\tlinks\tNICs/srv\tsw ports\tdiam(hops)\tdiam(links)\tbisection")
	for _, p := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.Name, p.Servers, p.Switches, p.Links, p.ServerPorts, p.SwitchPorts,
			p.Diameter, p.DiameterLinks, p.BisectionLinks)
	}
	return tw.Flush()
}

func hypercubeProps(d int) topology.Properties {
	h := hypercube.MustBuild(hypercube.Config{D: d})
	return h.Properties()
}

// T2NetworkSize regenerates the network-size table: how many servers an
// ABCCC supports as a function of switch radix n, order k and NIC ports p,
// against BCCC/BCube at the same (n,k). Larger p trades server population
// for bandwidth and diameter (see F13).
func T2NetworkSize(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "n\tk\tABCCC p=2\tABCCC p=3\tABCCC p=4\tBCCC\tBCube\tDCell")
	for _, n := range []int{4, 8, 16, 24, 48} {
		for _, k := range []int{1, 2} {
			row := fmt.Sprintf("%d\t%d", n, k)
			for _, p := range []int{2, 3, 4} {
				cfg := core.Config{N: n, K: k, P: p}
				if err := cfg.Validate(); err != nil {
					row += "\t-"
					continue
				}
				row += fmt.Sprintf("\t%d", cfg.Properties().Servers)
			}
			row += fmt.Sprintf("\t%d", bccc.Config{N: n, K: k}.Properties().Servers)
			row += fmt.Sprintf("\t%d", bcube.Config{N: n, K: k}.Properties().Servers)
			if dc := (dcell.Config{N: n, K: k}); dc.Validate() == nil {
				row += fmt.Sprintf("\t%d", dc.Properties().Servers)
			} else {
				row += "\t-"
			}
			fmt.Fprintln(tw, row)
		}
	}
	return tw.Flush()
}
