package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F25LatencyVsLoad regenerates the classic latency-versus-offered-load
// curve: Poisson flow arrivals at increasing rates, carried by the reliable
// transport, with mean and p99 flow-completion times reported per load
// point. FCTs stay flat until the fabric saturates, then grow sharply —
// and the knee sits further right on structures with more per-server
// capacity.
func F25LatencyVsLoad(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
	}
	cfg := packetsim.DefaultTransport()
	const (
		duration  = 0.05      // seconds of arrivals
		flowBytes = 256 << 10 // 256 KB per flow
	)

	// Arrival processes are drawn serially (fresh seed per load point, as
	// before); the transport simulations — the dominant cost — sweep the
	// (structure, load) grid on the worker pool.
	type job struct {
		structure string
		t         topology.Topology
		perServer float64
		flows     []traffic.Flow
	}
	var jobs []job
	for _, b := range builds {
		n := b.t.Network().NumServers()
		// Rates are per server so differently sized structures carry the
		// same per-server offered load.
		for _, perServer := range []float64{10, 40, 100} {
			rng := rand.New(rand.NewSource(37))
			flows, err := traffic.Poisson(n, perServer*float64(n), duration, rng)
			if err != nil {
				return err
			}
			for i := range flows {
				flows[i].Bytes = flowBytes
			}
			jobs = append(jobs, job{b.name, b.t, perServer, flows})
		}
	}

	rows, err := sweepRows(len(jobs), func(i int) (string, error) {
		j := jobs[i]
		res, err := packetsim.RunTransport(j.t, j.flows, cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s\t%.0f\t%d\t%d\t%.2f\t%.2f\t%d\n",
			j.structure, j.perServer, len(j.flows), res.CompletedFlows,
			res.MeanFCTSec*1e3, res.P99FCTSec*1e3, res.Retransmits), nil
	})

	tw := table(w)
	fmt.Fprintln(tw, "structure\tarrivals/sec/srv\tflows\tcompleted\tmean FCT(ms)\tp99 FCT(ms)\tretransmits")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	if err != nil {
		return err
	}
	return tw.Flush()
}
