package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F19Transport regenerates the reliable-transport view of the simulations:
// Reno-like flows (slow start, fast retransmit, timeouts) carrying a shuffle
// and an incast on each structure. Unlike the open-loop packet experiment
// (F12), every byte is eventually delivered; congestion shows up as
// retransmissions and longer completion times instead of vanished packets —
// the regime the original evaluation's TCP simulations ran in.
func F19Transport(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	cfg := packetsim.DefaultTransport()
	ecnCfg := cfg
	ecnCfg.ECN = true
	tw := table(w)
	fmt.Fprintln(tw, "structure\tworkload\tflows\tcompleted\tretransmits\tECN marks\tmean FCT(ms)\tmakespan(ms)\tgoodput(Gb/s)")
	for _, b := range builds {
		n := b.t.Network().NumServers()
		rng := rand.New(rand.NewSource(31))
		shuffle, err := traffic.Shuffle(n, n/4, n/4, rng)
		if err != nil {
			return err
		}
		incast, err := traffic.Incast(n, 0, n/2, rng)
		if err != nil {
			return err
		}
		websearch := traffic.ApplySizes(traffic.Uniform(n, n, rng), traffic.WebSearch(), rng)
		for _, wl := range []struct {
			name  string
			flows []traffic.Flow
			cfg   packetsim.TransportConfig
		}{
			{"shuffle", shuffle, cfg},
			{"incast", incast, cfg},
			{"incast+ECN", incast, ecnCfg},
			{"websearch", websearch, cfg},
		} {
			res, err := packetsim.RunTransport(b.t, wl.flows, wl.cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
				b.name, wl.name, len(wl.flows), res.CompletedFlows, res.Retransmits,
				res.ECNMarks, res.MeanFCTSec*1e3, res.MakespanSec*1e3, res.GoodputBps*8/1e9)
		}
	}
	return tw.Flush()
}
