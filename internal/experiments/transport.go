package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F19Transport regenerates the reliable-transport view of the simulations:
// Reno-like flows (slow start, fast retransmit, timeouts) carrying a shuffle
// and an incast on each structure. Unlike the open-loop packet experiment
// (F12), every byte is eventually delivered; congestion shows up as
// retransmissions and longer completion times instead of vanished packets —
// the regime the original evaluation's TCP simulations ran in.
func F19Transport(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	cfg := packetsim.DefaultTransport()
	ecnCfg := cfg
	ecnCfg.ECN = true

	// Workloads are drawn serially (one RNG stream per structure, as
	// before); the transport runs sweep on the worker pool. The plain and
	// ECN incast rows reuse the same flows slice, so the second run hits
	// the packetsim route cache.
	type job struct {
		structure string
		t         topology.Topology
		workload  string
		flows     []traffic.Flow
		cfg       packetsim.TransportConfig
	}
	var jobs []job
	for _, b := range builds {
		n := b.t.Network().NumServers()
		rng := rand.New(rand.NewSource(31))
		shuffle, err := traffic.Shuffle(n, n/4, n/4, rng)
		if err != nil {
			return err
		}
		incast, err := traffic.Incast(n, 0, n/2, rng)
		if err != nil {
			return err
		}
		websearch := traffic.ApplySizes(traffic.Uniform(n, n, rng), traffic.WebSearch(), rng)
		jobs = append(jobs,
			job{b.name, b.t, "shuffle", shuffle, cfg},
			job{b.name, b.t, "incast", incast, cfg},
			job{b.name, b.t, "incast+ECN", incast, ecnCfg},
			job{b.name, b.t, "websearch", websearch, cfg})
	}

	rows, err := sweepRows(len(jobs), func(i int) (string, error) {
		j := jobs[i]
		res, err := packetsim.RunTransport(j.t, j.flows, j.cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s\t%s\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			j.structure, j.workload, len(j.flows), res.CompletedFlows, res.Retransmits,
			res.ECNMarks, res.MeanFCTSec*1e3, res.MakespanSec*1e3, res.GoodputBps*8/1e9), nil
	})

	tw := table(w)
	fmt.Fprintln(tw, "structure\tworkload\tflows\tcompleted\tretransmits\tECN marks\tmean FCT(ms)\tmakespan(ms)\tgoodput(Gb/s)")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	if err != nil {
		return err
	}
	return tw.Flush()
}
