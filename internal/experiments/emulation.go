package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// topologyPath and linkLoadsOf keep the experiment bodies terse.
type topologyPath = topology.Path

func linkLoadsOf(net *topology.Network, paths []topologyPath) metrics.LoadReport {
	return metrics.LinkLoads(net, paths)
}

// F15Emulation runs the built structure as a distributed system (one
// goroutine per device, channels as cables, O(1)-state hop-by-hop
// forwarding) and checks that operational behaviour matches the static
// analysis: full delivery within the forwarding bound on a healthy network,
// and exact accounting of losses when devices die.
func F15Emulation(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "scenario\tinjected\tdelivered\tdropped(failed)\tmax hops\thop bound\tadjacencies")
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 2, P: 3},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		n := net.NumServers()
		rng := rand.New(rand.NewSource(21))
		flows := traffic.Permutation(n, rng)
		bound := 2*cfg.Digits() + 1

		healthy, err := emu.Run(tp, flows)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s healthy\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			net.Name(), healthy.Injected, healthy.Delivered, healthy.DroppedFailed,
			healthy.MaxHops, bound, healthy.HelloAcks, 2*net.NumLinks())

		// Kill 5% of switches; packets through them are lost with exact
		// accounting, and the discovery sweep sees the dead adjacencies.
		view := failure.Inject(net, failure.Switches, 0.05, rng)
		var dead []int
		for _, sw := range net.Switches() {
			if !view.NodeUp(sw) {
				dead = append(dead, sw)
			}
		}
		broken, err := emu.Run(tp, flows, emu.WithFailedNodes(dead...))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s 5%% switches dead\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			net.Name(), broken.Injected, broken.Delivered, broken.DroppedFailed,
			broken.MaxHops, bound, broken.HelloAcks, 2*net.NumLinks())
	}
	return tw.Flush()
}

// F16LoadBalance is the honest version of the companion paper's
// load-balancing claim: repeated flows between the same endpoints (a long-
// lived elephant pair population) routed with one fixed permutation pile
// onto the same level switches, while per-flow random permutations spread
// them. The table reports the peak link load of 8 flows per pair across 32
// pairs under each policy.
func F16LoadBalance(w io.Writer) error {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2})
	net := tp.Network()
	rng := rand.New(rand.NewSource(17))
	servers := net.Servers()

	const pairs, flowsPerPair = 32, 8
	type pair struct{ src, dst int }
	ps := make([]pair, pairs)
	for i := range ps {
		a, b := rng.Intn(len(servers)), rng.Intn(len(servers)-1)
		if b >= a {
			b++
		}
		ps[i] = pair{servers[a], servers[b]}
	}

	tw := table(w)
	fmt.Fprintln(tw, "policy\tmax link load\tavg link load\tused links\tJain fairness")
	for _, policy := range []struct {
		name   string
		random bool
	}{
		{name: "fixed grouped permutation", random: false},
		{name: "random permutation per flow", random: true},
	} {
		var paths []topologyPath
		for _, pr := range ps {
			for f := 0; f < flowsPerPair; f++ {
				var (
					p   topologyPath
					err error
				)
				if policy.random {
					p, err = tp.RouteWithStrategy(pr.src, pr.dst, core.StrategyRandom, int64(f))
				} else {
					p, err = tp.Route(pr.src, pr.dst)
				}
				if err != nil {
					return err
				}
				paths = append(paths, p)
			}
		}
		load := linkLoadsOf(net, paths)
		// Fairness over the whole fabric: idle links count as zeros, so a
		// policy that leaves most of the fabric dark scores low.
		vec := metrics.LinkLoadVector(net, paths)
		for i := load.UsedLinks; i < net.NumLinks(); i++ {
			vec = append(vec, 0)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%d\t%.3f\n",
			policy.name, load.MaxLoad, load.AvgLoad, load.UsedLinks, metrics.JainFairness(vec))
	}
	return tw.Flush()
}
