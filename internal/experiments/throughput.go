package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/flowsim"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F5Permutation regenerates the permutation-strategy figure (the companion
// ICC'15 study): for each routing permutation strategy, the average routed
// path length and the induced link-load profile under a random-permutation
// workload. Grouped minimizes length; randomizing the digit order evens out
// the load across level switches at a small length cost.
func F5Permutation(w io.Writer) error {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2})
	net := tp.Network()
	rng := rand.New(rand.NewSource(7))
	flows := traffic.Permutation(net.NumServers(), rng)
	servers := net.Servers()

	tw := table(w)
	fmt.Fprintln(tw, "strategy\tavg len(links)\tmax link load\tavg link load\tused links")
	for _, s := range []core.Strategy{
		core.StrategyGrouped, core.StrategyIdentity, core.StrategyReversed, core.StrategyRandom,
	} {
		paths := make([]topology.Path, len(flows))
		totalLen := 0
		for i, f := range flows {
			p, err := tp.RouteWithStrategy(servers[f.Src], servers[f.Dst], s, int64(i))
			if err != nil {
				return err
			}
			paths[i] = p
			totalLen += p.Len()
		}
		load := metrics.LinkLoads(net, paths)
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\t%d\n",
			s, float64(totalLen)/float64(len(paths)), load.MaxLoad, load.AvgLoad, load.UsedLinks)
	}
	return tw.Flush()
}

// F6ABT regenerates the aggregate-bottleneck-throughput figure: max-min fair
// ABT (flows x bottleneck rate, in units of line rate) under random
// permutation and all-to-all workloads, normalized per server.
func F6ABT(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"ABCCC(4,2,3)", core.MustBuild(core.Config{N: 4, K: 2, P: 3})},
		{"BCCC(4,1)", bccc.MustBuild(bccc.Config{N: 4, K: 1})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"BCube(4,2)", bcube.MustBuild(bcube.Config{N: 4, K: 2})},
		{"DCell(4,1)", dcell.MustBuild(dcell.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	rng := rand.New(rand.NewSource(11))
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tABT perm\tABT/srv perm\tABT all-to-all\tABT/srv a2a")
	for _, b := range builds {
		n := b.t.Network().NumServers()
		permFlows := traffic.Permutation(n, rng)
		permABT, err := abt(b.t, permFlows)
		if err != nil {
			return err
		}
		a2aABT, err := abt(b.t, traffic.AllToAll(n))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.3f\t%.2f\t%.3f\n",
			b.name, n, permABT, permABT/float64(n), a2aABT, a2aABT/float64(n))
	}
	return tw.Flush()
}

func abt(t topology.Topology, flows []traffic.Flow) (float64, error) {
	paths, err := flowsim.RoutePaths(t, flows)
	if err != nil {
		return 0, err
	}
	asg, err := flowsim.MaxMinFair(t.Network(), paths)
	if err != nil {
		return 0, err
	}
	return asg.ABT(), nil
}
