package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/failure"
	"repro/internal/traffic"
)

// F20ControlPlane compares three ways of operating an ABCCC: the static
// O(1)-state algorithmic forwarding (NextHop), learned distance-vector
// tables (O(#servers) state, distance-many convergence rounds), and a
// flooded link-state plane (full-map state, ~eccentricity rounds, far more
// control messages) — and the all-to-all delivery each achieves with 5% of
// switches dead. Algorithmic forwarding is free but blind; DV is cheap but
// converges slowly; LS converges fast but floods. Both table planes serve
// every connected pair under failures.
func F20ControlPlane(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "structure\tplane\tstate/device\tconv rounds\tmsgs\tdelivered(healthy)\tdelivered(5% sw dead)")
	for _, cfg := range []core.Config{
		{N: 4, K: 1, P: 2},
		{N: 4, K: 2, P: 3},
	} {
		tp := core.MustBuild(cfg)
		net := tp.Network()
		n := net.NumServers()
		flows := traffic.AllToAll(n)
		if len(flows) > 4000 {
			flows = flows[:4000]
		}
		rng := rand.New(rand.NewSource(29))
		view := failure.Inject(net, failure.Switches, 0.05, rng)
		var dead []int
		for _, sw := range net.Switches() {
			if !view.NodeUp(sw) {
				dead = append(dead, sw)
			}
		}

		// Static algorithmic plane.
		healthy, err := emu.Run(tp, flows)
		if err != nil {
			return err
		}
		broken, err := emu.Run(tp, flows, emu.WithFailedNodes(dead...))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tstatic NextHop\tO(1)\t0\t0\t%d/%d\t%d/%d\n",
			net.Name(), healthy.Delivered, len(flows), broken.Delivered, len(flows))

		// Learned distance-vector plane.
		dvHealthy, err := emu.RunDV(tp, flows)
		if err != nil {
			return err
		}
		dvBroken, err := emu.RunDV(tp, flows, dead...)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tDV tables\t%d entries\t%d\t%d\t%d/%d\t%d/%d\n",
			net.Name(), n, dvHealthy.Rounds, dvHealthy.Messages,
			dvHealthy.Delivered, len(flows), dvBroken.Delivered, len(flows))

		// Flooded link-state plane.
		lsHealthy, err := emu.RunLS(tp, flows)
		if err != nil {
			return err
		}
		lsBroken, err := emu.RunLS(tp, flows, dead...)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tLS flooding\tfull map\t%d\t%d\t%d/%d\t%d/%d\n",
			net.Name(), lsHealthy.Rounds, lsHealthy.Messages,
			lsHealthy.Delivered, len(flows), lsBroken.Delivered, len(flows))
	}
	return tw.Flush()
}
