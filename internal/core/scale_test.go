package core

import (
	"math/rand"
	"testing"
)

// TestScaleTwelveThousandServers exercises the library at a realistic
// deployment size — ABCCC(16,2,2): 12,288 servers, 4,864 switches — with
// sampled checks. Skipped under -short.
func TestScaleTwelveThousandServers(t *testing.T) {
	if testing.Short() {
		t.Skip("large build skipped with -short")
	}
	cfg := Config{N: 16, K: 2, P: 2}
	tp, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := tp.Network()
	props := tp.Properties()
	if net.NumServers() != props.Servers || net.NumSwitches() != props.Switches ||
		net.NumLinks() != props.Links {
		t.Fatalf("counts %d/%d/%d vs formulas %d/%d/%d",
			net.NumServers(), net.NumSwitches(), net.NumLinks(),
			props.Servers, props.Switches, props.Links)
	}

	rng := rand.New(rand.NewSource(16))
	servers := net.Servers()
	worstHops := 0
	for trial := 0; trial < 2000; trial++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		p, err := tp.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(net, src, dst); err != nil {
			t.Fatal(err)
		}
		if h := p.SwitchHops(net); h > worstHops {
			worstHops = h
		}
		walk, err := tp.ForwardingWalk(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := walk.Validate(net, src, dst); err != nil {
			t.Fatal(err)
		}
	}
	if worstHops > props.Diameter {
		t.Errorf("sampled worst route %d hops > analytic diameter %d", worstHops, props.Diameter)
	}

	// A couple of full BFS spot checks against the analytic diameter.
	for trial := 0; trial < 3; trial++ {
		src := servers[rng.Intn(len(servers))]
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			t.Fatal("disconnected at scale")
		}
		if ecc/2 > props.Diameter {
			t.Errorf("eccentricity %d hops exceeds diameter %d", ecc/2, props.Diameter)
		}
	}
}
