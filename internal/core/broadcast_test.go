package core

import (
	"testing"
)

func TestBroadcastTreeCoversAllServers(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		root := net.Server(0)
		tree, err := tp.BroadcastTree(root)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if len(tree) != net.NumServers() {
			t.Fatalf("%s: tree covers %d servers, want %d", net.Name(), len(tree), net.NumServers())
		}
		for _, dst := range net.Servers() {
			p, ok := tree[dst]
			if !ok {
				t.Fatalf("%s: server %s missing from tree", net.Name(), net.Label(dst))
			}
			if err := p.Validate(net, root, dst); err != nil {
				t.Fatalf("%s: %v", net.Name(), err)
			}
		}
	}
}

func TestBroadcastTreeIsATree(t *testing.T) {
	// Tree property: every node reached by the broadcast has exactly one
	// predecessor across all paths, and each cable is used at most once.
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	root := net.Server(7)
	tree, err := tp.BroadcastTree(root)
	if err != nil {
		t.Fatal(err)
	}
	parent := map[int]int{}
	edgeUsed := map[[2]int]bool{}
	for _, p := range tree {
		for i := 1; i < len(p); i++ {
			prev, ok := parent[p[i]]
			if ok && prev != p[i-1] {
				t.Fatalf("node %s has two parents: %s and %s",
					net.Label(p[i]), net.Label(prev), net.Label(p[i-1]))
			}
			parent[p[i]] = p[i-1]
			key := [2]int{p[i-1], p[i]}
			edgeUsed[key] = true
		}
	}
	// Each directed tree edge counted once; undirected reuse would imply a
	// node with two parents, already checked above.
	if len(edgeUsed) != len(parent) {
		t.Errorf("%d directed edges for %d child nodes", len(edgeUsed), len(parent))
	}
}

func TestBroadcastDepthWithinBound(t *testing.T) {
	// Depth bound: correcting k+1 levels costs one hop each, plus at most
	// one realignment per ownership group on the deepest branch, plus the
	// final local fan-out hop.
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		root := tp.Network().Server(0)
		depth, err := tp.BroadcastDepth(root)
		if err != nil {
			t.Fatal(err)
		}
		bound := tp.cfg.Digits() + tp.r + 1
		if depth > bound {
			t.Errorf("%s: broadcast depth %d > bound %d", tp.Network().Name(), depth, bound)
		}
		if depth == 0 && tp.Network().NumServers() > 1 {
			t.Errorf("%s: zero-depth broadcast", tp.Network().Name())
		}
	}
}

func TestBroadcastTreeRootPath(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	root := tp.Network().Server(3)
	tree, err := tp.BroadcastTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if p := tree[root]; len(p) != 1 || p[0] != root {
		t.Errorf("root path = %v, want [%d]", p, root)
	}
}

func TestBroadcastTreeRejectsSwitchRoot(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	if _, err := tp.BroadcastTree(tp.Network().Switches()[0]); err == nil {
		t.Error("BroadcastTree(switch) succeeded")
	}
	if _, err := tp.BroadcastDepth(tp.Network().Switches()[0]); err == nil {
		t.Error("BroadcastDepth(switch) succeeded")
	}
}

func TestMulticastSubset(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	root := net.Server(0)
	dsts := []int{net.Server(3), net.Server(9), net.Server(17)}
	paths, err := tp.Multicast(root, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(dsts) {
		t.Fatalf("got %d paths, want %d", len(paths), len(dsts))
	}
	for _, d := range dsts {
		if err := paths[d].Validate(net, root, d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMulticastBadDestination(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	root := tp.Network().Server(0)
	sw := tp.Network().Switches()[0]
	if _, err := tp.Multicast(root, []int{sw}); err == nil {
		t.Error("Multicast to a switch succeeded")
	}
}

func TestGatherTreeMirrorsBroadcast(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	root := net.Server(5)
	gather, err := tp.GatherTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(gather) != net.NumServers() {
		t.Fatalf("gather covers %d servers, want %d", len(gather), net.NumServers())
	}
	for src, p := range gather {
		if err := p.Validate(net, src, root); err != nil {
			t.Fatal(err)
		}
	}
	depth, err := tp.GatherDepth(root)
	if err != nil {
		t.Fatal(err)
	}
	bDepth, err := tp.BroadcastDepth(root)
	if err != nil {
		t.Fatal(err)
	}
	if depth != bDepth {
		t.Errorf("gather depth %d != broadcast depth %d", depth, bDepth)
	}
}

func TestGatherTreeSwitchRoot(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	if _, err := tp.GatherTree(tp.Network().Switches()[0]); err == nil {
		t.Error("switch root accepted")
	}
}
