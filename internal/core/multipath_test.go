package core

import (
	"testing"
)

func TestParallelPathsValidAndDisjoint(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		if len(servers) > 24 {
			servers = servers[:24]
		}
		for _, src := range servers {
			for _, dst := range servers {
				if src == dst {
					continue
				}
				paths := tp.ParallelPaths(src, dst)
				if len(paths) == 0 {
					t.Fatalf("%s: no parallel paths %s->%s", net.Name(),
						net.Label(src), net.Label(dst))
				}
				used := map[int]bool{}
				for _, p := range paths {
					if err := p.Validate(net, src, dst); err != nil {
						t.Fatalf("%s: %v", net.Name(), err)
					}
					for _, node := range p {
						if node == src || node == dst {
							continue
						}
						if used[node] {
							t.Fatalf("%s: paths %s->%s share internal node %s",
								net.Name(), net.Label(src), net.Label(dst), net.Label(node))
						}
						used[node] = true
					}
				}
			}
		}
	}
}

func TestParallelPathsCountAtLeastTwo(t *testing.T) {
	// Any pair of distinct servers in an instance with k >= 1 has at least
	// two disjoint paths (the structure is 2-connected between servers).
	for _, cfg := range []Config{{N: 2, K: 1, P: 2}, {N: 3, K: 1, P: 2}, {N: 3, K: 2, P: 3}, {N: 4, K: 3, P: 4}} {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		if len(servers) > 20 {
			servers = servers[:20]
		}
		for _, src := range servers {
			for _, dst := range servers {
				if src == dst {
					continue
				}
				if got := len(tp.ParallelPaths(src, dst)); got < 2 {
					t.Fatalf("%s: only %d parallel paths %s->%s", net.Name(), got,
						net.Label(src), net.Label(dst))
				}
			}
		}
	}
}

func TestParallelPathsNeverExceedMaxFlow(t *testing.T) {
	// The number of internally vertex-disjoint paths is bounded by the exact
	// max-flow value (Menger); the construction must respect it.
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	servers := net.Servers()[:12]
	for _, src := range servers {
		for _, dst := range servers {
			if src == dst {
				continue
			}
			got := len(tp.ParallelPaths(src, dst))
			limit := net.Graph().VertexDisjointPaths(src, dst)
			if got > limit {
				t.Fatalf("ParallelPaths = %d > max-flow bound %d for %s->%s",
					got, limit, net.Label(src), net.Label(dst))
			}
		}
	}
}

func TestParallelPathsFullDegreeForFarPairs(t *testing.T) {
	// For servers in different crossbars with all digits differing and all
	// levels owned (p-1 divides k+1), the construction should saturate the
	// server degree: p disjoint paths.
	tp := MustBuild(Config{N: 3, K: 1, P: 3}) // digits=2, r=1, servers own both levels
	src, err := tp.NodeOf(Addr{Vec: 0, J: 0})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tp.NodeOf(Addr{Vec: 8, J: 0}) // [2,2] vs [0,0]
	if err != nil {
		t.Fatal(err)
	}
	paths := tp.ParallelPaths(src, dst)
	// Both NIC ports to level switches can carry a disjoint path; the local
	// port leads to a stub crossbar (r == 1), so 2 paths minimum here.
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(paths))
	}
}

func TestParallelPathsNearEqualLength(t *testing.T) {
	// The BCCC abstract claims "multiple near-equal parallel paths": path
	// lengths must stay within diameter + r hops of each other.
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 2})
	paths := tp.ParallelPaths(src, dst)
	if len(paths) < 2 {
		t.Fatalf("want >= 2 paths, got %d", len(paths))
	}
	min, max := 1<<30, 0
	for _, p := range paths {
		h := p.SwitchHops(net)
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
	}
	if max-min > tp.Properties().Diameter {
		t.Errorf("path lengths range %d..%d too wide", min, max)
	}
}

func TestParallelPathsSameNodeAndErrors(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	s := tp.Network().Server(0)
	if got := tp.ParallelPaths(s, s); got != nil {
		t.Errorf("ParallelPaths(self) = %v, want nil", got)
	}
	sw := tp.Network().Switches()[0]
	if got := tp.ParallelPaths(sw, s); got != nil {
		t.Errorf("ParallelPaths(switch, server) = %v, want nil", got)
	}
}

func TestParallelPathsSameCrossbar(t *testing.T) {
	// Same-crossbar pairs get the local path plus loop detours through
	// neighbor crossbars.
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	src, _ := tp.NodeOf(Addr{Vec: 4, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 4, J: 1})
	paths := tp.ParallelPaths(src, dst)
	if len(paths) < 2 {
		t.Fatalf("same-crossbar pair: %d paths, want >= 2", len(paths))
	}
}
