package core

import (
	"testing"
)

// Validity, disjointness, plurality, and the max-flow bound are covered by
// the shared topotest.RunMultipathRouter battery; the tests here pin only
// ABCCC-specific claims the generic contract cannot express.

func TestParallelPathsFullDegreeForFarPairs(t *testing.T) {
	// For servers in different crossbars with all digits differing and all
	// levels owned (p-1 divides k+1), the construction should saturate the
	// server degree: p disjoint paths.
	tp := MustBuild(Config{N: 3, K: 1, P: 3}) // digits=2, r=1, servers own both levels
	src, err := tp.NodeOf(Addr{Vec: 0, J: 0})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tp.NodeOf(Addr{Vec: 8, J: 0}) // [2,2] vs [0,0]
	if err != nil {
		t.Fatal(err)
	}
	paths := tp.ParallelPaths(src, dst)
	// Both NIC ports to level switches can carry a disjoint path; the local
	// port leads to a stub crossbar (r == 1), so 2 paths minimum here.
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(paths))
	}
}

func TestParallelPathsNearEqualLength(t *testing.T) {
	// The BCCC abstract claims "multiple near-equal parallel paths": path
	// lengths must stay within diameter + r hops of each other.
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 2})
	paths := tp.ParallelPaths(src, dst)
	if len(paths) < 2 {
		t.Fatalf("want >= 2 paths, got %d", len(paths))
	}
	min, max := 1<<30, 0
	for _, p := range paths {
		h := p.SwitchHops(net)
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
	}
	if max-min > tp.Properties().Diameter {
		t.Errorf("path lengths range %d..%d too wide", min, max)
	}
}

func TestParallelPathsSameCrossbar(t *testing.T) {
	// Same-crossbar pairs get the local path plus loop detours through
	// neighbor crossbars.
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	src, _ := tp.NodeOf(Addr{Vec: 4, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 4, J: 1})
	paths := tp.ParallelPaths(src, dst)
	if len(paths) < 2 {
		t.Fatalf("same-crossbar pair: %d paths, want >= 2", len(paths))
	}
}
