package core

import (
	"repro/internal/topology"
)

// ParallelPaths returns a set of internally vertex-disjoint paths between two
// servers, built from the structure's parallel-path construction:
//
//   - one candidate per differing level l, correcting l first so the path
//     leaves the source through the level-l switch;
//   - one candidate per agreeing level owned by the source server, taking a
//     detour through that level (mis-correcting it, then restoring it last),
//     which exits through an otherwise unused source port;
//   - the realign-first candidate that exits through the local switch;
//   - for same-crossbar pairs, two-level detour loops through a neighbor
//     crossbar.
//
// Candidates are filtered greedily so the returned paths share no nodes other
// than the endpoints. The result always contains at least the default route.
func (t *ABCCC) ParallelPaths(src, dst int) []topology.Path {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil || src == dst {
		return nil
	}
	a, b := t.addrOf[src], t.addrOf[dst]
	candidates := t.parallelCandidates(a, b)
	return topology.DisjointSubset(candidates, src, dst)
}

// parallelCandidates generates the candidate paths described on
// ParallelPaths, most-preferred first.
func (t *ABCCC) parallelCandidates(a, b Addr) []topology.Path {
	diff := t.DiffLevels(a, b)
	diffSet := make(map[int]bool, len(diff))
	for _, l := range diff {
		diffSet[l] = true
	}
	var out []topology.Path

	srcNode := t.servers[a.Vec*t.r+a.J]
	dstNode := t.servers[b.Vec*t.r+b.J]
	// Detour candidates can fold back onto a switch they already crossed
	// (e.g. a zero-length detour); Validate rejects those non-simple walks.
	add := func(p topology.Path, err error) {
		if err == nil && p.Validate(t.net, srcNode, dstNode) == nil {
			out = append(out, p)
		}
	}

	// Default grouped route first so the result is never empty.
	add(t.routeOrdered(a, b, t.orderGrouped(diff, a.J, b.J)))

	// One candidate per differing level, corrected first. Prefer levels
	// owned by the source (they leave without touching the local switch).
	firstLevels := append([]int(nil), diff...)
	for _, l := range orderBySourceOwnership(firstLevels, t.cfg, a.J) {
		rest := without(diff, l)
		order := append([]int{l}, t.orderGrouped(rest, t.cfg.Owner(l), b.J)...)
		add(t.routeOrdered(a, b, order))
	}

	// Detours through agreeing levels: set the level to a scratch value,
	// correct everything else, restore it last. Levels owned by the source
	// server come first — those candidates leave through an otherwise
	// unused source port, while foreign-owned levels consume the local
	// switch (the greedy filter keeps at most one of the latter).
	var agreeing []int
	for l := 0; l < t.cfg.Digits(); l++ {
		if !diffSet[l] {
			agreeing = append(agreeing, l)
		}
	}
	for _, l := range orderBySourceOwnership(agreeing, t.cfg, a.J) {
		cur := t.digit(a.Vec, l)
		for v := 0; v < t.cfg.N; v++ {
			if v == cur {
				continue
			}
			steps := []assign{{level: l, value: v}}
			for _, dl := range t.orderGrouped(diff, t.cfg.Owner(l), t.cfg.Owner(l)) {
				steps = append(steps, assign{level: dl, value: t.digit(b.Vec, dl)})
			}
			steps = append(steps, assign{level: l, value: cur})
			add(t.routeAssign(a, b, steps))
		}
	}

	// Same-crossbar pairs: loop through a neighbor crossbar using one level
	// owned by the source and one owned by the destination.
	if a.Vec == b.Vec {
		for l1 := 0; l1 < t.cfg.Digits(); l1++ {
			if t.cfg.Owner(l1) != a.J {
				continue
			}
			for l2 := 0; l2 < t.cfg.Digits(); l2++ {
				if l2 == l1 || t.cfg.Owner(l2) != b.J {
					continue
				}
				d1, d2 := t.digit(a.Vec, l1), t.digit(a.Vec, l2)
				for v1 := 0; v1 < t.cfg.N; v1++ {
					if v1 == d1 {
						continue
					}
					for v2 := 0; v2 < t.cfg.N; v2++ {
						if v2 == d2 {
							continue
						}
						add(t.routeAssign(a, b, []assign{
							{level: l1, value: v1},
							{level: l2, value: v2},
							{level: l1, value: d1},
							{level: l2, value: d2},
						}))
					}
				}
			}
		}
	}
	return out
}

// orderBySourceOwnership returns the levels with those owned by server j
// first, preserving ascending order within each class.
func orderBySourceOwnership(levels []int, cfg Config, j int) []int {
	out := make([]int, 0, len(levels))
	for _, l := range levels {
		if cfg.Owner(l) == j {
			out = append(out, l)
		}
	}
	for _, l := range levels {
		if cfg.Owner(l) != j {
			out = append(out, l)
		}
	}
	return out
}

// without returns levels with l removed.
func without(levels []int, l int) []int {
	out := make([]int, 0, len(levels)-1)
	for _, x := range levels {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}
