package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddrRoundTripNodeOf(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 3})
	for vec := 0; vec < tp.vecs; vec++ {
		for j := 0; j < tp.r; j++ {
			a := Addr{Vec: vec, J: j}
			node, err := tp.NodeOf(a)
			if err != nil {
				t.Fatalf("NodeOf(%v): %v", a, err)
			}
			back, err := tp.AddrOf(node)
			if err != nil {
				t.Fatalf("AddrOf(%d): %v", node, err)
			}
			if back != a {
				t.Fatalf("round trip %v -> %d -> %v", a, node, back)
			}
		}
	}
}

func TestAddrOfSwitchFails(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	if _, err := tp.AddrOf(tp.Network().Switches()[0]); err == nil {
		t.Error("AddrOf(switch) succeeded")
	}
}

func TestNodeOfRange(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	bad := []Addr{
		{Vec: -1, J: 0},
		{Vec: tp.vecs, J: 0},
		{Vec: 0, J: -1},
		{Vec: 0, J: tp.r},
	}
	for _, a := range bad {
		if _, err := tp.NodeOf(a); err == nil {
			t.Errorf("NodeOf(%v) succeeded", a)
		}
	}
}

func TestFormatParseAddrRoundTrip(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 2})
	prop := func(rawVec, rawJ uint) bool {
		a := Addr{Vec: int(rawVec % uint(tp.vecs)), J: int(rawJ % uint(tp.r))}
		s := tp.FormatAddr(a)
		back, err := tp.ParseAddr(s)
		return err == nil && back == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatAddrShape(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 2})
	a := Addr{Vec: 1*16 + 2*4 + 3, J: 1}
	if got := tp.FormatAddr(a); got != "[1,2,3|1]" {
		t.Errorf("FormatAddr = %q, want [1,2,3|1]", got)
	}
}

func TestParseAddrErrors(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 2})
	tests := []struct {
		in      string
		wantErr string
	}{
		{in: "1,2,3|1]", wantErr: "missing '['"},
		{in: "[1,2,3|1", wantErr: "missing ']'"},
		{in: "[1,2,3]", wantErr: "missing '|j'"},
		{in: "[1,2|0]", wantErr: "digits"},
		{in: "[1,2,3,0|0]", wantErr: "digits"},
		{in: "[1,x,3|0]", wantErr: "invalid syntax"},
		{in: "[1,9,3|0]", wantErr: "out of base"},
		{in: "[1,2,3|x]", wantErr: "invalid syntax"},
		{in: "[1,2,3|7]", wantErr: "out of range"},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			if _, err := tp.ParseAddr(tt.in); err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("ParseAddr(%q) = %v, want substring %q", tt.in, err, tt.wantErr)
			}
		})
	}
}

func TestParseAddrAcceptsSpaces(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 2})
	a, err := tp.ParseAddr("[1, 2, 3| 1]")
	if err != nil {
		t.Fatalf("ParseAddr: %v", err)
	}
	if want := (Addr{Vec: 1*16 + 2*4 + 3, J: 1}); a != want {
		t.Errorf("ParseAddr = %v, want %v", a, want)
	}
}

func TestDiffLevels(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	a := Addr{Vec: 0}
	b := Addr{Vec: 2*9 + 0*3 + 1} // digits [2,0,1]
	got := tp.DiffLevels(a, b)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("DiffLevels = %v, want [0 2]", got)
	}
	if d := tp.DiffLevels(a, a); d != nil {
		t.Errorf("DiffLevels(a,a) = %v, want nil", d)
	}
}

func TestDigitAccessor(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	a := Addr{Vec: 2*9 + 1*3 + 0}
	for l, want := range map[int]int{0: 0, 1: 1, 2: 2} {
		if got := tp.Digit(a, l); got != want {
			t.Errorf("Digit(level %d) = %d, want %d", l, got, want)
		}
	}
}
