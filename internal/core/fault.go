package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// ErrNoRoute is returned by RouteAvoiding when the fault-tolerant algorithm
// gives up. The underlying graph may still be connected; the gap between the
// two is the algorithm's miss rate, one of the evaluation metrics.
var ErrNoRoute = errors.New("abccc: fault-tolerant routing found no route")

// RouteAvoiding routes from src to dst using only components that are alive
// in view. It is a local adaptive algorithm in the digit-correction family:
// at every server it greedily corrects any remaining differing level whose
// realignment hop and level crossing are fully alive and unvisited; when
// stuck it detours by deliberately mis-correcting a level, within a bounded
// hop budget.
func (t *ABCCC) RouteAvoiding(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	if !view.NodeUp(src) || !view.NodeUp(dst) {
		return nil, fmt.Errorf("%w: endpoint failed", ErrNoRoute)
	}
	if src == dst {
		return topology.Path{src}, nil
	}

	w := &faultWalk{
		t:       t,
		view:    view,
		dst:     t.addrOf[dst],
		visited: map[int]bool{src: true},
		path:    topology.Path{src},
		cur:     t.addrOf[src],
	}
	budget := 6 * (t.cfg.Digits() + t.r + 2)
	for hop := 0; hop < budget; hop++ {
		if w.cur.Vec == w.dst.Vec && w.cur.J == w.dst.J {
			return w.path, nil
		}
		if w.tryGoal() {
			continue
		}
		if w.tryDetour() {
			continue
		}
		return nil, fmt.Errorf("%w: stuck at %s after %d hops", ErrNoRoute, t.FormatAddr(w.cur), hop)
	}
	return nil, fmt.Errorf("%w: hop budget exhausted", ErrNoRoute)
}

// faultWalk is the mutable state of one adaptive routing attempt.
type faultWalk struct {
	t       *ABCCC
	view    *graph.View
	dst     Addr
	visited map[int]bool
	path    topology.Path
	cur     Addr
}

// tryGoal attempts one goal-directed move: a final realignment inside the
// destination crossbar, or the correction of a differing level (in grouped
// preference order).
func (w *faultWalk) tryGoal() bool {
	t := w.t
	if w.cur.Vec == w.dst.Vec {
		if w.realign(w.dst.J) {
			return true
		}
	}
	diff := t.DiffLevels(w.cur, w.dst)
	for _, l := range t.orderGrouped(diff, w.cur.J, w.dst.J) {
		if w.cross(l, t.digit(w.dst.Vec, l)) {
			return true
		}
	}
	return false
}

// tryDetour makes any alive sideways move: mis-correct some level to any
// value, or realign to any other local server, preferring moves that keep
// the number of wrong digits small.
func (w *faultWalk) tryDetour() bool {
	t := w.t
	for l := 0; l < t.cfg.Digits(); l++ {
		cur := t.digit(w.cur.Vec, l)
		for v := 0; v < t.cfg.N; v++ {
			if v != cur && w.cross(l, v) {
				return true
			}
		}
	}
	for j := 0; j < t.r; j++ {
		if j != w.cur.J && w.realign(j) {
			return true
		}
	}
	return false
}

// realign moves to server j of the current crossbar through the local
// switch, if every component involved is alive and unvisited.
func (w *faultWalk) realign(j int) bool {
	t := w.t
	sw := t.localSw[w.cur.Vec]
	target := t.servers[w.cur.Vec*t.r+j]
	if !w.usable(sw) || !w.usable(target) {
		return false
	}
	curNode := t.servers[w.cur.Vec*t.r+w.cur.J]
	if !w.edgeUp(curNode, sw) || !w.edgeUp(sw, target) {
		return false
	}
	w.advance(sw, target)
	w.cur.J = j
	return true
}

// cross sets level l to value v by realigning to the level's owner (if
// needed) and traversing the level switch, checking liveness of every
// component first.
func (w *faultWalk) cross(l, v int) bool {
	t := w.t
	owner := t.cfg.Owner(l)
	// Peek at the realignment without committing it.
	entry := w.cur
	var pending []int
	if entry.J != owner {
		sw := t.localSw[entry.Vec]
		mid := t.servers[entry.Vec*t.r+owner]
		curNode := t.servers[entry.Vec*t.r+entry.J]
		if !w.usable(sw) || !w.usable(mid) || !w.edgeUp(curNode, sw) || !w.edgeUp(sw, mid) {
			return false
		}
		pending = append(pending, sw, mid)
		entry.J = owner
	}
	lsw := t.levelSw[l][t.contract(entry.Vec, l)]
	next := t.setDigit(entry.Vec, l, v)
	nextNode := t.servers[next*t.r+owner]
	entryNode := t.servers[entry.Vec*t.r+owner]
	if !w.usable(lsw) || !w.usable(nextNode) ||
		!w.edgeUp(entryNode, lsw) || !w.edgeUp(lsw, nextNode) {
		return false
	}
	w.advance(pending...)
	w.advance(lsw, nextNode)
	w.cur = Addr{Vec: next, J: owner}
	return true
}

// usable reports whether node is alive and not yet on the path.
func (w *faultWalk) usable(node int) bool {
	return w.view.NodeUp(node) && !w.visited[node]
}

// edgeUp reports whether the cable between u and v is alive.
func (w *faultWalk) edgeUp(u, v int) bool {
	return w.view.EdgeUp(w.t.net.Graph().EdgeBetween(u, v))
}

// advance appends nodes to the path and marks them visited.
func (w *faultWalk) advance(nodes ...int) {
	for _, n := range nodes {
		w.visited[n] = true
		w.path = append(w.path, n)
	}
}
