package core

import (
	"fmt"

	"repro/internal/topology"
)

// BroadcastTreeWithOrder builds the broadcast tree that corrects address
// levels in the given fixed global order (a permutation of 0..k). Different
// orders produce trees using different level switches early, which is what
// makes near-disjoint forests possible. The default BroadcastTree is the
// ascending order.
func (t *ABCCC) BroadcastTreeWithOrder(root int, order []int) (map[int]topology.Path, error) {
	if !t.net.IsServer(root) {
		return nil, fmt.Errorf("abccc: broadcast root %d is not a server", root)
	}
	if err := t.checkLevelOrder(order); err != nil {
		return nil, err
	}
	ra := t.addrOf[root]
	out := make(map[int]topology.Path, t.vecs*t.r)

	var visit func(vec, entryJ int, entryPath topology.Path, pos int)
	visit = func(vec, entryJ int, entryPath topology.Path, pos int) {
		out[t.servers[vec*t.r+entryJ]] = entryPath
		for j := 0; j < t.r; j++ {
			if j == entryJ {
				continue
			}
			out[t.servers[vec*t.r+j]] = appendPath(entryPath, t.localSw[vec], t.servers[vec*t.r+j])
		}
		for oi := pos; oi < len(order); oi++ {
			l := order[oi]
			owner := t.cfg.Owner(l)
			relay := entryPath
			if owner != entryJ {
				relay = out[t.servers[vec*t.r+owner]]
			}
			lsw := t.levelSw[l][t.contract(vec, l)]
			cur := t.digit(vec, l)
			for d := 0; d < t.cfg.N; d++ {
				if d == cur {
					continue
				}
				child := t.setDigit(vec, l, d)
				visit(child, owner, appendPath(relay, lsw, t.servers[child*t.r+owner]), oi+1)
			}
		}
	}
	visit(ra.Vec, ra.J, topology.Path{root}, 0)
	return out, nil
}

// checkLevelOrder validates a permutation of the address levels.
func (t *ABCCC) checkLevelOrder(order []int) error {
	if len(order) != t.cfg.Digits() {
		return fmt.Errorf("abccc: level order has %d entries, want %d", len(order), t.cfg.Digits())
	}
	seen := make([]bool, t.cfg.Digits())
	for _, l := range order {
		if l < 0 || l >= t.cfg.Digits() || seen[l] {
			return fmt.Errorf("abccc: level order %v is not a permutation", order)
		}
		seen[l] = true
	}
	return nil
}

// BroadcastForest returns a set of pairwise *edge-disjoint* broadcast trees
// rooted at root: every cable carries at most one tree's traffic in each
// direction, so a large payload split across the forest pipelines the
// broadcast at len(forest) times a single tree's rate — the multi-port
// payoff of the one-to-all extension.
//
// For r = 1 instances (every server owns every level; the data graph is
// BCube's), the shifted-rotation construction of the BCube paper yields one
// tree per level: tree i delivers to every server by correcting level i
// first (mis-correcting it to a scratch value and restoring it last when the
// destination agrees with the root there), then the remaining levels in
// rotation order. The construction is filtered through an edge-disjointness
// check, so the returned trees are always genuinely disjoint. For r >= 2 the
// shared local switch serializes deliveries into each crossbar and the
// forest degenerates to the single default tree.
func (t *ABCCC) BroadcastForest(root int) ([]map[int]topology.Path, error) {
	if !t.net.IsServer(root) {
		return nil, fmt.Errorf("abccc: broadcast root %d is not a server", root)
	}
	if t.r > 1 {
		tree, err := t.BroadcastTree(root)
		if err != nil {
			return nil, err
		}
		return []map[int]topology.Path{tree}, nil
	}
	digits := t.cfg.Digits()
	usedEdges := map[[2]int]bool{}
	var forest []map[int]topology.Path
	for i := 0; i < digits; i++ {
		tree, err := t.shiftedTree(root, i)
		if err != nil {
			return nil, err
		}
		edges := treeEdges(tree)
		if conflicts(edges, usedEdges) {
			continue
		}
		for e := range edges {
			usedEdges[e] = true
		}
		forest = append(forest, tree)
	}
	return forest, nil
}

// shiftedTree builds the level-i broadcast tree of the shifted-rotation
// construction (r == 1 only): every destination's delivery path corrects
// level i first — to the destination digit when it differs from the root's,
// to the scratch value root_digit+1 (restored at the very end) when it does
// not — and the remaining levels in rotation order i+1, ..., i-1.
func (t *ABCCC) shiftedTree(root, i int) (map[int]topology.Path, error) {
	a := t.addrOf[root]
	digits := t.cfg.Digits()
	out := make(map[int]topology.Path, t.vecs)
	out[root] = topology.Path{root}
	for vec := 0; vec < t.vecs; vec++ {
		if vec == a.Vec {
			continue
		}
		var steps []assign
		direct := t.digit(a.Vec, i) != t.digit(vec, i)
		if direct {
			steps = append(steps, assign{level: i, value: t.digit(vec, i)})
		} else {
			steps = append(steps, assign{level: i, value: (t.digit(a.Vec, i) + 1) % t.cfg.N})
		}
		for off := 1; off < digits; off++ {
			m := (i + off) % digits
			if t.digit(a.Vec, m) != t.digit(vec, m) {
				steps = append(steps, assign{level: m, value: t.digit(vec, m)})
			}
		}
		if !direct {
			steps = append(steps, assign{level: i, value: t.digit(vec, i)})
		}
		p, err := t.routeAssign(a, Addr{Vec: vec, J: 0}, steps)
		if err != nil {
			return nil, fmt.Errorf("abccc: shifted tree %d: %w", i, err)
		}
		out[t.servers[vec*t.r]] = p
	}
	return out, nil
}

// treeEdges collects the directed cable set of a broadcast tree.
func treeEdges(tree map[int]topology.Path) map[[2]int]bool {
	edges := map[[2]int]bool{}
	for _, p := range tree {
		for i := 1; i < len(p); i++ {
			edges[[2]int{p[i-1], p[i]}] = true
		}
	}
	return edges
}

func conflicts(edges, used map[[2]int]bool) bool {
	for e := range edges {
		if used[e] {
			return true
		}
	}
	return false
}
