package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Strategy selects how the one-to-one routing algorithm orders the address
// levels it corrects. The companion ICC'15 paper ("Permutation Generation for
// Routing in BCube Connected Crossbars") shows the permutation choice trades
// path length against load balance.
type Strategy int

// Routing strategies.
const (
	// StrategyGrouped corrects levels grouped by their owning server,
	// starting with the source server's own group and finishing with the
	// destination server's. It minimizes intra-crossbar realignments and
	// achieves the diameter bound.
	StrategyGrouped Strategy = iota + 1
	// StrategyIdentity corrects levels in ascending order.
	StrategyIdentity
	// StrategyReversed corrects levels in descending order.
	StrategyReversed
	// StrategyRandom shuffles the correction order (seeded); randomizing the
	// permutation per flow spreads load across level switches.
	StrategyRandom
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyGrouped:
		return "grouped"
	case StrategyIdentity:
		return "identity"
	case StrategyReversed:
		return "reversed"
	case StrategyRandom:
		return "random"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// assign is one routing step: set address level `level` to digit `value`.
type assign struct {
	level int
	value int
}

// Route returns the ABCCC one-to-one route from server src to server dst
// using the default grouped strategy.
func (t *ABCCC) Route(src, dst int) (topology.Path, error) {
	return t.RouteWithStrategy(src, dst, StrategyGrouped, 0)
}

// RouteWithStrategy routes with an explicit permutation strategy. The seed is
// used only by StrategyRandom; routes are deterministic given (src, dst,
// strategy, seed).
func (t *ABCCC) RouteWithStrategy(src, dst int, s Strategy, seed int64) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	a, b := t.addrOf[src], t.addrOf[dst]
	diff := t.DiffLevels(a, b)
	var order []int
	switch s {
	case StrategyGrouped:
		order = t.orderGrouped(diff, a.J, b.J)
	case StrategyIdentity:
		order = diff
	case StrategyReversed:
		order = reversed(diff)
	case StrategyRandom:
		order = append([]int(nil), diff...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	default:
		return nil, fmt.Errorf("abccc: unknown routing strategy %d", int(s))
	}
	return t.routeOrdered(a, b, order)
}

// RouteWithOrder routes correcting the differing levels in exactly the given
// order, which must be a permutation of DiffLevels(src, dst).
func (t *ABCCC) RouteWithOrder(src, dst int, order []int) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	a, b := t.addrOf[src], t.addrOf[dst]
	diff := t.DiffLevels(a, b)
	if len(order) != len(diff) {
		return nil, fmt.Errorf("abccc: order has %d levels, want %d", len(order), len(diff))
	}
	want := make(map[int]bool, len(diff))
	for _, l := range diff {
		want[l] = true
	}
	for _, l := range order {
		if !want[l] {
			return nil, fmt.Errorf("abccc: order level %d is not a differing level (or repeated)", l)
		}
		delete(want, l)
	}
	return t.routeOrdered(a, b, order)
}

// routeOrdered converts a level order into assignment steps and walks them.
func (t *ABCCC) routeOrdered(a, b Addr, order []int) (topology.Path, error) {
	steps := make([]assign, len(order))
	for i, l := range order {
		steps[i] = assign{level: l, value: t.digit(b.Vec, l)}
	}
	return t.routeAssign(a, b, steps)
}

// routeAssign executes a sequence of digit assignments from a to b's crossbar
// and finally realigns to b's server. The assignment sequence must leave the
// vector equal to b.Vec.
func (t *ABCCC) routeAssign(a, b Addr, steps []assign) (topology.Path, error) {
	cur := a
	srcNode := t.servers[a.Vec*t.r+a.J]
	path := topology.Path{srcNode}
	for _, st := range steps {
		if t.digit(cur.Vec, st.level) == st.value {
			return nil, fmt.Errorf("abccc: step sets level %d to its current digit %d", st.level, st.value)
		}
		owner := t.cfg.Owner(st.level)
		if cur.J != owner {
			path = append(path, t.localSw[cur.Vec], t.servers[cur.Vec*t.r+owner])
			cur.J = owner
		}
		path = append(path, t.levelSw[st.level][t.contract(cur.Vec, st.level)])
		cur.Vec = t.setDigit(cur.Vec, st.level, st.value)
		path = append(path, t.servers[cur.Vec*t.r+cur.J])
	}
	if cur.Vec != b.Vec {
		return nil, fmt.Errorf("abccc: steps end at %s, want crossbar of %s",
			t.FormatAddr(cur), t.FormatAddr(b))
	}
	if cur.J != b.J {
		path = append(path, t.localSw[cur.Vec], t.servers[cur.Vec*t.r+b.J])
	}
	return path, nil
}

// orderGrouped sorts the differing levels so that levels owned by the same
// server are contiguous, the source server's group comes first and the
// destination server's group comes last (minimizing realignment hops).
func (t *ABCCC) orderGrouped(diff []int, srcJ, dstJ int) []int {
	order := append([]int(nil), diff...)
	rank := func(l int) int {
		owner := t.cfg.Owner(l)
		switch {
		case owner == srcJ:
			return -1 // first
		case owner == dstJ:
			return t.r + 1 // last
		default:
			return owner
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := rank(order[i]), rank(order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i] < order[j]
	})
	return order
}

func reversed(s []int) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
