package core

import (
	"testing"
)

func TestExpandPreservesEverything(t *testing.T) {
	tests := []Config{
		{N: 4, K: 0, P: 2},
		{N: 4, K: 1, P: 2},
		{N: 4, K: 1, P: 3},
		{N: 4, K: 2, P: 3},
		{N: 3, K: 1, P: 4},
	}
	for _, cfg := range tests {
		old := MustBuild(cfg)
		bigger, report, err := Expand(old)
		if err != nil {
			t.Fatalf("%s: Expand: %v", old.Network().Name(), err)
		}
		if bigger.Config().K != cfg.K+1 {
			t.Errorf("expanded K = %d, want %d", bigger.Config().K, cfg.K+1)
		}
		if report.RewiredLinks != 0 {
			t.Errorf("%s: %d rewired links, want 0 (the headline claim)",
				report.Before, report.RewiredLinks)
		}
		if report.UpgradedServers != 0 {
			t.Errorf("%s: %d upgraded servers, want 0", report.Before, report.UpgradedServers)
		}
		if report.PreservedLinks != old.Network().NumLinks() {
			t.Errorf("%s: preserved %d of %d links", report.Before,
				report.PreservedLinks, old.Network().NumLinks())
		}
		if report.TouchedFraction() != 0 {
			t.Errorf("%s: touched fraction %f, want 0", report.Before, report.TouchedFraction())
		}
		wantNewServers := bigger.Network().NumServers() - old.Network().NumServers()
		if report.NewServers != wantNewServers {
			t.Errorf("NewServers = %d, want %d", report.NewServers, wantNewServers)
		}
	}
}

func TestExpandGrowthFactor(t *testing.T) {
	// Expanding multiplies crossbars by n; server growth is n*r'/r-fold.
	old := MustBuild(Config{N: 4, K: 1, P: 2})
	bigger, report, err := Expand(old)
	if err != nil {
		t.Fatal(err)
	}
	// n=4, k=1->2, p=2: r goes 2->3, vecs 16->64: servers 32 -> 192.
	if old.Network().NumServers() != 32 || bigger.Network().NumServers() != 192 {
		t.Errorf("servers %d -> %d, want 32 -> 192",
			old.Network().NumServers(), bigger.Network().NumServers())
	}
	if report.ServersBefore != 32 || report.ServersAfter != 192 {
		t.Errorf("report servers %d -> %d", report.ServersBefore, report.ServersAfter)
	}
}

func TestExpandFailsWhenCrossbarFull(t *testing.T) {
	// n=2, p=2: K can only be 0 (r = k+1 <= n). Expansion to K=1 needs
	// r=2 <= 2: fine. Expansion to K=2 needs r=3 > 2: must fail.
	first := MustBuild(Config{N: 2, K: 0, P: 2})
	second, _, err := Expand(first)
	if err != nil {
		t.Fatalf("first expansion: %v", err)
	}
	if _, _, err := Expand(second); err == nil {
		t.Error("expansion past local-switch capacity succeeded")
	}
}

func TestExpandReportString(t *testing.T) {
	old := MustBuild(Config{N: 4, K: 0, P: 2})
	_, report, err := Expand(old)
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	if s == "" {
		t.Error("empty report string")
	}
}

func TestExpandedRoutesStillValid(t *testing.T) {
	old := MustBuild(Config{N: 3, K: 1, P: 2})
	bigger, _, err := Expand(old)
	if err != nil {
		t.Fatal(err)
	}
	net := bigger.Network()
	servers := net.Servers()
	for i := 0; i < 10; i++ {
		src, dst := servers[i*7%len(servers)], servers[i*13%len(servers)]
		p, err := bigger.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(net, src, dst); err != nil {
			t.Fatal(err)
		}
	}
}
