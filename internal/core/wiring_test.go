package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestWiringPlanCoversEveryCableOnce(t *testing.T) {
	for _, cfg := range []Config{{N: 3, K: 1, P: 2}, {N: 4, K: 2, P: 3}} {
		tp := MustBuild(cfg)
		plan := tp.WiringPlan()
		if len(plan) != tp.Network().NumLinks() {
			t.Fatalf("%s: plan has %d cables, network %d links",
				tp.Network().Name(), len(plan), tp.Network().NumLinks())
		}
		seen := map[string]bool{}
		for _, c := range plan {
			key := c.A + "|" + c.B
			if seen[key] {
				t.Fatalf("duplicate cable %v", c)
			}
			seen[key] = true
		}
	}
}

func TestWiringPlanPortsWithinHardware(t *testing.T) {
	cfg := Config{N: 4, K: 2, P: 3}
	tp := MustBuild(cfg)
	serverPorts := map[string]map[int]bool{}
	switchPorts := map[string]map[int]bool{}
	record := func(m map[string]map[int]bool, dev string, port, limit int, t *testing.T) {
		if port < 0 || port >= limit {
			t.Fatalf("%s port %d out of 0..%d", dev, port, limit-1)
		}
		if m[dev] == nil {
			m[dev] = map[int]bool{}
		}
		if m[dev][port] {
			t.Fatalf("%s port %d used twice", dev, port)
		}
		m[dev][port] = true
	}
	for _, c := range tp.WiringPlan() {
		record(serverPorts, c.A, c.APort, cfg.P, t) // A side is always a server
		record(switchPorts, c.B, c.BPort, cfg.N, t) // B side is always a switch
		if !strings.HasPrefix(c.A, "S") {
			t.Fatalf("cable A side %q is not a server", c.A)
		}
		if !strings.HasPrefix(c.B, "L") && !strings.HasPrefix(c.B, "W") {
			t.Fatalf("cable B side %q is not a switch", c.B)
		}
	}
}

func TestWiringPlanPortZeroIsLocal(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	for _, c := range tp.WiringPlan() {
		isLocal := strings.HasPrefix(c.B, "L")
		if (c.APort == 0) != isLocal {
			t.Fatalf("cable %v: port 0 must face the local switch", c)
		}
	}
}

func TestWriteWiringPlan(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	var buf bytes.Buffer
	if err := tp.WriteWiringPlan(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != tp.Network().NumLinks() {
		t.Errorf("wrote %d lines, want %d", lines, tp.Network().NumLinks())
	}
	if !strings.Contains(buf.String(), "port 0 <->") {
		t.Errorf("plan text malformed:\n%s", buf.String())
	}
}
