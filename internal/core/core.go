package core
