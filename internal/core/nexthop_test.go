package core

import (
	"testing"
)

func TestForwardingWalkAllPairs(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		budget := 2 * (2*cfg.Digits() + 3)
		servers := net.Servers()
		if len(servers) > 32 {
			servers = servers[:32]
		}
		for _, src := range servers {
			for _, dst := range servers {
				p, err := tp.ForwardingWalk(src, dst)
				if err != nil {
					t.Fatalf("%s: walk %s->%s: %v", net.Name(),
						net.Label(src), net.Label(dst), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if p.Len() > budget {
					t.Fatalf("%s: walk used %d edges, budget %d", net.Name(), p.Len(), budget)
				}
			}
		}
	}
}

func TestForwardingWalkMatchesIdentityRouteLength(t *testing.T) {
	// The hop-by-hop policy corrects the lowest differing level first, so
	// its walks should never be longer than the identity-strategy source
	// route plus the initial realignment the source route avoids.
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	for _, src := range net.Servers()[:15] {
		for _, dst := range net.Servers()[:15] {
			walk, err := tp.ForwardingWalk(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			route, err := tp.RouteWithStrategy(src, dst, StrategyIdentity, 0)
			if err != nil {
				t.Fatal(err)
			}
			if walk.SwitchHops(net) > route.SwitchHops(net)+1 {
				t.Errorf("walk %d hops, identity route %d (%s->%s)",
					walk.SwitchHops(net), route.SwitchHops(net),
					net.Label(src), net.Label(dst))
			}
		}
	}
}

func TestNextHopFromSwitchDelivers(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 1, P: 2})
	net := tp.Network()
	// From the destination's own local switch, the next hop must be the
	// destination itself.
	dst := net.Server(5)
	a, err := tp.AddrOf(dst)
	if err != nil {
		t.Fatal(err)
	}
	next, err := tp.NextHop(tp.localSw[a.Vec], dst)
	if err != nil {
		t.Fatal(err)
	}
	if next != dst {
		t.Errorf("NextHop(local switch, dst) = %s, want dst %s",
			net.Label(next), net.Label(dst))
	}
}

func TestNextHopSelf(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	s := tp.Network().Server(0)
	next, err := tp.NextHop(s, s)
	if err != nil || next != s {
		t.Errorf("NextHop(self) = %d, %v", next, err)
	}
}

func TestNextHopErrors(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	sw := tp.Network().Switches()[0]
	srv := tp.Network().Server(0)
	if _, err := tp.NextHop(srv, sw); err == nil {
		t.Error("NextHop to a switch succeeded")
	}
	if _, err := tp.ForwardingWalk(sw, srv); err == nil {
		t.Error("ForwardingWalk from a switch succeeded")
	}
	if _, err := tp.ForwardingWalk(srv, sw); err == nil {
		t.Error("ForwardingWalk to a switch succeeded")
	}
}

func TestNextHopDeterministic(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	src, dst := net.Server(0), net.Server(14)
	a, err := tp.NextHop(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tp.NextHop(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("NextHop not deterministic")
	}
}
