package core

import (
	"fmt"

	"repro/internal/topology"
)

// Expand builds the order-(k+1) instance with the same switch radix and
// server port count and reports the expansion cost. ABCCC's design goal is
// that the old instance embeds unchanged: every existing server keeps its
// hardware, every existing cable stays plugged in, and growth only adds new
// crossbars (with high digit != 0), new level-(k+1) switches, and — when the
// new level starts a new ownership group — one new server per old crossbar
// plugged into a free local-switch port.
func Expand(old *ABCCC) (*ABCCC, topology.ExpansionReport, error) {
	cfg := old.cfg
	next := Config{N: cfg.N, K: cfg.K + 1, P: cfg.P}
	bigger, err := Build(next)
	if err != nil {
		return nil, topology.ExpansionReport{}, fmt.Errorf("abccc: expand: %w", err)
	}

	report := topology.ExpansionReport{
		Before:        old.net.Name(),
		After:         bigger.net.Name(),
		ServersBefore: old.net.NumServers(),
		ServersAfter:  bigger.net.NumServers(),
		NewServers:    bigger.net.NumServers() - old.net.NumServers(),
		NewSwitches:   bigger.net.NumSwitches() - old.net.NumSwitches(),
		NewLinks:      bigger.net.NumLinks() - old.net.NumLinks(),
	}

	// Structural embedding: an old crossbar vector v (k+1 digits) maps to
	// the new vector with the same integer value (the inserted high digit is
	// 0). Old level-switch contracted vectors likewise keep their integer
	// value. Build the full old-node -> new-node table once.
	oldG := old.net.Graph()
	mapped := make([]int, oldG.NumNodes())
	for vec := 0; vec < old.vecs; vec++ {
		mapped[old.localSw[vec]] = bigger.localSw[vec]
		for j := 0; j < old.r; j++ {
			mapped[old.servers[vec*old.r+j]] = bigger.servers[vec*bigger.r+j]
		}
	}
	for l := range old.levelSw {
		for cvec, id := range old.levelSw[l] {
			mapped[id] = bigger.levelSw[l][cvec]
		}
	}

	for e := 0; e < oldG.NumEdges(); e++ {
		edge := oldG.Edge(e)
		if bigger.net.Graph().EdgeBetween(mapped[edge.U], mapped[edge.V]) != -1 {
			report.PreservedLinks++
		} else {
			report.RewiredLinks++
		}
	}
	// A server is "upgraded" if its new role needs more NIC ports than its
	// hardware provides (p, fixed at installation). Plugging a new cable
	// into a previously free port is not an upgrade. ABCCC never upgrades;
	// BCube upgrades every server (k+1 -> k+2 ports).
	for vec := 0; vec < old.vecs; vec++ {
		for j := 0; j < old.r; j++ {
			if bigger.net.Graph().Degree(mapped[old.servers[vec*old.r+j]]) > old.cfg.P {
				report.UpgradedServers++
			}
		}
	}
	return bigger, report, nil
}
