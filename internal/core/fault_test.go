package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestRouteAvoidingNoFailuresMatchesRoute(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	view := graph.NewView(net.Graph())
	servers := net.Servers()[:20]
	for _, src := range servers {
		for _, dst := range servers {
			p, err := tp.RouteAvoiding(src, dst, view)
			if err != nil {
				t.Fatalf("RouteAvoiding(%s,%s): %v", net.Label(src), net.Label(dst), err)
			}
			if err := p.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
			want, err := tp.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if p.SwitchHops(net) != want.SwitchHops(net) {
				t.Errorf("RouteAvoiding = %d hops, Route = %d hops (%s->%s)",
					p.SwitchHops(net), want.SwitchHops(net), net.Label(src), net.Label(dst))
			}
		}
	}
}

func TestRouteAvoidingSingleLevelSwitchFailure(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 2})
	direct, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first level switch on the direct route.
	view := graph.NewView(net.Graph())
	for _, node := range direct {
		if !net.IsServer(node) && net.Label(node)[0] == 'W' {
			view.FailNode(node)
			break
		}
	}
	p, err := tp.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding around failed switch: %v", err)
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Fatal(err)
	}
	if !p.Alive(net, view) {
		t.Error("returned route uses a failed component")
	}
}

func TestRouteAvoidingFailedEndpoint(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	src, dst := net.Server(0), net.Server(3)
	view := graph.NewView(net.Graph())
	view.FailNode(dst)
	if _, err := tp.RouteAvoiding(src, dst, view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("RouteAvoiding to failed dst = %v, want ErrNoRoute", err)
	}
}

func TestRouteAvoidingSelf(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	s := tp.Network().Server(0)
	p, err := tp.RouteAvoiding(s, s, graph.NewView(tp.Network().Graph()))
	if err != nil || len(p) != 1 {
		t.Errorf("RouteAvoiding(self) = %v, %v", p, err)
	}
}

func TestRouteAvoidingRejectsSwitchEndpoints(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	sw := tp.Network().Switches()[0]
	srv := tp.Network().Server(0)
	if _, err := tp.RouteAvoiding(sw, srv, nil); err == nil {
		t.Error("RouteAvoiding(switch, server) succeeded")
	}
}

func TestRouteAvoidingLinkFailures(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 8, J: 1})
	direct, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first cable of the direct route.
	view := graph.NewView(net.Graph())
	view.FailEdge(net.Graph().EdgeBetween(direct[0], direct[1]))
	p, err := tp.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding around failed cable: %v", err)
	}
	if !p.Alive(net, view) {
		t.Error("route uses the failed cable")
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestRouteAvoidingUnderRandomFailuresMostlySucceeds(t *testing.T) {
	// With 5% of switches failed, the adaptive algorithm must find a route
	// for the overwhelming majority of connected pairs.
	tp := MustBuild(Config{N: 4, K: 2, P: 3})
	net := tp.Network()
	rng := rand.New(rand.NewSource(1))
	view := graph.NewView(net.Graph())
	for _, sw := range net.Switches() {
		if rng.Float64() < 0.05 {
			view.FailNode(sw)
		}
	}
	servers := net.Servers()
	attempts, found, connected := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst {
			continue
		}
		attempts++
		if net.Graph().ShortestPath(src, dst, view) != nil {
			connected++
		} else {
			continue
		}
		p, err := tp.RouteAvoiding(src, dst, view)
		if err != nil {
			continue
		}
		if err := p.Validate(net, src, dst); err != nil {
			t.Fatal(err)
		}
		if !p.Alive(net, view) {
			t.Fatal("route uses failed components")
		}
		found++
	}
	if connected == 0 {
		t.Fatal("no connected pairs sampled")
	}
	if ratio := float64(found) / float64(connected); ratio < 0.95 {
		t.Errorf("fault routing succeeded for %.2f of connected pairs, want >= 0.95", ratio)
	}
}

func TestRouteAvoidingStuckInIsland(t *testing.T) {
	// Fail every switch around the source: no route can exist.
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	src := net.Server(0)
	view := graph.NewView(net.Graph())
	for _, nb := range net.Graph().Neighbors(src, nil) {
		view.FailNode(nb)
	}
	dst := net.Server(len(net.Servers()) - 1)
	if _, err := tp.RouteAvoiding(src, dst, view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("RouteAvoiding from isolated server = %v, want ErrNoRoute", err)
	}
}
