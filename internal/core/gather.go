package core

import (
	"fmt"

	"repro/internal/topology"
)

// GatherTree returns, for every server, the path its contribution takes to
// the gather root — the all-to-one collective that completes the GBC3
// communication set (one-to-one, one-to-all, one-to-many). It is the
// broadcast tree reversed: intermediate servers can aggregate (reduce) the
// payloads of their subtrees before forwarding, so each cable carries one
// aggregated message and the root receives in tree-depth hops instead of
// fielding N unicasts.
func (t *ABCCC) GatherTree(root int) (map[int]topology.Path, error) {
	tree, err := t.BroadcastTree(root)
	if err != nil {
		return nil, fmt.Errorf("abccc: gather: %w", err)
	}
	out := make(map[int]topology.Path, len(tree))
	for src, down := range tree {
		up := make(topology.Path, len(down))
		for i, node := range down {
			up[len(down)-1-i] = node
		}
		out[src] = up
	}
	return out, nil
}

// GatherDepth returns the number of switch hops until the slowest
// contribution reaches the root (equal to the broadcast depth by symmetry).
func (t *ABCCC) GatherDepth(root int) (int, error) {
	return t.BroadcastDepth(root)
}
