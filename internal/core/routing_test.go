package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func allStrategies() []Strategy {
	return []Strategy{StrategyGrouped, StrategyIdentity, StrategyReversed, StrategyRandom}
}

func TestRouteAllPairsAllStrategiesValid(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		if len(servers) > 40 {
			servers = servers[:40]
		}
		maxHops := tp.Properties().Diameter
		for _, s := range allStrategies() {
			for _, src := range servers {
				for _, dst := range servers {
					p, err := tp.RouteWithStrategy(src, dst, s, 42)
					if err != nil {
						t.Fatalf("%s %v Route(%s,%s): %v", net.Name(), s,
							net.Label(src), net.Label(dst), err)
					}
					if err := p.Validate(net, src, dst); err != nil {
						t.Fatalf("%s %v: %v", net.Name(), s, err)
					}
					if h := p.SwitchHops(net); h > maxHops+tp.r {
						// Non-grouped strategies may exceed the grouped
						// diameter, but never by more than the extra
						// realignments (at most one per correction group).
						t.Fatalf("%s %v Route(%s,%s) = %d hops, limit %d",
							net.Name(), s, net.Label(src), net.Label(dst), h, maxHops+tp.r)
					}
				}
			}
		}
	}
}

func TestRouteGroupedWithinDiameter(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		d := tp.Properties().Diameter
		for _, src := range net.Servers() {
			for _, dst := range net.Servers() {
				p, err := tp.Route(src, dst)
				if err != nil {
					t.Fatalf("%s Route: %v", net.Name(), err)
				}
				if h := p.SwitchHops(net); h > d {
					a, _ := tp.AddrOf(src)
					b, _ := tp.AddrOf(dst)
					t.Fatalf("%s Route(%s,%s) = %d hops > analytic diameter %d",
						net.Name(), tp.FormatAddr(a), tp.FormatAddr(b), h, d)
				}
			}
		}
	}
}

// TestAnalyticDiameterIsTight verifies the closed-form diameter against the
// built graph: the worst-case shortest-path distance between servers
// (switch hops = edge distance / 2, since the graph is server-switch
// bipartite) must equal the formula, and the grouped routing algorithm must
// achieve it.
func TestAnalyticDiameterIsTight(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		worst := 0
		for _, src := range servers {
			ecc, ok := net.Graph().Eccentricity(src, servers, nil)
			if !ok {
				t.Fatalf("%s: disconnected", net.Name())
			}
			if ecc > worst {
				worst = ecc
			}
		}
		want := tp.Properties().Diameter
		if worst%2 != 0 {
			t.Fatalf("%s: odd server-to-server edge distance %d", net.Name(), worst)
		}
		if worst/2 != want {
			t.Errorf("%s: graph diameter %d hops, analytic %d", net.Name(), worst/2, want)
		}
	}
}

// TestGroupedRouteIsShortestPath checks that the grouped permutation yields
// shortest paths for every pair on small instances.
func TestGroupedRouteIsShortestPath(t *testing.T) {
	for _, cfg := range []Config{{N: 2, K: 1, P: 2}, {N: 3, K: 1, P: 2}, {N: 3, K: 2, P: 3}, {N: 2, K: 1, P: 3}} {
		tp := MustBuild(cfg)
		net := tp.Network()
		for _, src := range net.Servers() {
			bfs := net.Graph().BFS(src, nil)
			for _, dst := range net.Servers() {
				p, err := tp.Route(src, dst)
				if err != nil {
					t.Fatalf("Route: %v", err)
				}
				if got, want := p.Len(), int(bfs.Dist[dst]); got != want {
					a, _ := tp.AddrOf(src)
					b, _ := tp.AddrOf(dst)
					t.Errorf("%s Route(%s,%s) length %d edges, shortest %d",
						net.Name(), tp.FormatAddr(a), tp.FormatAddr(b), got, want)
				}
			}
		}
	}
}

func TestRouteSelf(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	s := tp.Network().Server(5)
	p, err := tp.Route(s, s)
	if err != nil {
		t.Fatalf("Route(self): %v", err)
	}
	if len(p) != 1 || p[0] != s {
		t.Errorf("Route(self) = %v", p)
	}
}

func TestRouteSameCrossbar(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	src, err := tp.NodeOf(Addr{Vec: 4, J: 0})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tp.NodeOf(Addr{Vec: 4, J: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tp.Route(src, dst)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if h := p.SwitchHops(tp.Network()); h != 1 {
		t.Errorf("same-crossbar route = %d hops, want 1 (local switch)", h)
	}
}

func TestRouteRejectsSwitchEndpoint(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	sw := tp.Network().Switches()[0]
	srv := tp.Network().Server(0)
	if _, err := tp.Route(sw, srv); err == nil {
		t.Error("Route(switch, server) succeeded")
	}
	if _, err := tp.Route(srv, sw); err == nil {
		t.Error("Route(server, switch) succeeded")
	}
}

func TestRouteWithStrategyUnknown(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	s := tp.Network().Servers()
	if _, err := tp.RouteWithStrategy(s[0], s[1], Strategy(99), 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRouteWithOrderValidation(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 0}) // [2,2,2]: all three digits differ
	tests := []struct {
		name    string
		order   []int
		wantErr string
	}{
		{name: "ok", order: []int{2, 0, 1}},
		{name: "short", order: []int{0, 1}, wantErr: "order has"},
		{name: "repeat", order: []int{0, 0, 1}, wantErr: "not a differing level"},
		{name: "wrong level", order: []int{0, 1, 5}, wantErr: "not a differing level"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := tp.RouteWithOrder(src, dst, tt.order)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("RouteWithOrder: %v", err)
				}
				if err := p.Validate(tp.Network(), src, dst); err != nil {
					t.Fatal(err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestRouteOrderDeterminesLevelSwitchSequence(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 0})
	p1, err := tp.RouteWithOrder(src, dst, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tp.RouteWithOrder(src, dst, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if levelSeq(tp, p1) == levelSeq(tp, p2) {
		t.Error("different orders produced the same level-switch sequence")
	}
}

// levelSeq extracts the sequence of level indices of level switches on p.
func levelSeq(tp *ABCCC, p []int) string {
	var b strings.Builder
	for _, node := range p {
		if tp.net.IsServer(node) {
			continue
		}
		label := tp.net.Label(node)
		if strings.HasPrefix(label, "W") {
			b.WriteString(label[:2])
		}
	}
	return b.String()
}

func TestRandomStrategyDeterministicPerSeed(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 1})
	p1, err := tp.RouteWithStrategy(src, dst, StrategyRandom, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tp.RouteWithStrategy(src, dst, StrategyRandom, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatal("same seed, different routes")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed, different routes")
		}
	}
}

func TestStrategyString(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{StrategyGrouped, "grouped"},
		{StrategyIdentity, "identity"},
		{StrategyReversed, "reversed"},
		{StrategyRandom, "random"},
		{Strategy(0), "strategy(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRouteUsesOnlyAliveWhenNoFailures(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	view := graph.NewView(net.Graph())
	src, dst := net.Server(0), net.Server(len(net.Servers())-1)
	p, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Alive(net, view) {
		t.Error("route not alive under empty view")
	}
}
