package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Partial is an incrementally deployed ABCCC: the first M crossbars of the
// full ABCCC(n,k,p) address space (vectors 0..M-1), with a level switch
// installed only once at least two of its member crossbars exist. This is
// the finest grain of the paper's expandability story: a data center grows
// crossbar by crossbar, staying connected and routable at every step, and
// reaching the full structure with zero rewiring.
//
// Routing uses the adaptive digit-correction walk with absent components
// treated as failed, so packets detour around address-space holes.
type Partial struct {
	full *ABCCC
	view *graph.View // absent components failed, over the full graph
	net  *topology.Network

	crossbars int
	toPartial []int // full node id -> partial node id (-1 if absent)
	toFull    []int // partial node id -> full node id
}

// BuildPartial constructs the first `crossbars` crossbars of ABCCC(cfg).
func BuildPartial(cfg Config, crossbars int) (*Partial, error) {
	full, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if crossbars < 1 || crossbars > full.vecs {
		return nil, fmt.Errorf("abccc: partial deployment of %d crossbars out of [1, %d]",
			crossbars, full.vecs)
	}
	p := &Partial{
		full:      full,
		view:      graph.NewView(full.net.Graph()),
		crossbars: crossbars,
		toPartial: make([]int, full.net.Graph().NumNodes()),
	}
	for i := range p.toPartial {
		p.toPartial[i] = -1
	}
	p.net = topology.NewNetwork(fmt.Sprintf("ABCCC(%d,%d,%d)/%d", cfg.N, cfg.K, cfg.P, crossbars))

	present := func(vec int) bool { return vec < crossbars }

	// Crossbars: local switch + servers.
	for vec := 0; vec < full.vecs; vec++ {
		if !present(vec) {
			p.view.FailNode(full.localSw[vec])
			for j := 0; j < full.r; j++ {
				p.view.FailNode(full.servers[vec*full.r+j])
			}
			continue
		}
		p.adopt(full.localSw[vec], p.net.AddSwitch(full.net.Label(full.localSw[vec])))
		for j := 0; j < full.r; j++ {
			id := full.servers[vec*full.r+j]
			p.adopt(id, p.net.AddServer(full.net.Label(id)))
		}
	}
	// Level switches: installed once >= 2 member crossbars exist.
	for l := range full.levelSw {
		for cvec, sw := range full.levelSw[l] {
			members := 0
			for d := 0; d < cfg.N; d++ {
				if present(full.expand(cvec, l, d)) {
					members++
				}
			}
			if members < 2 {
				p.view.FailNode(sw)
				continue
			}
			p.adopt(sw, p.net.AddSwitch(full.net.Label(sw)))
		}
	}
	// Cables among present nodes.
	g := full.net.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(e)
		pu, pv := p.toPartial[edge.U], p.toPartial[edge.V]
		if pu == -1 || pv == -1 {
			continue
		}
		if err := p.net.Connect(pu, pv); err != nil {
			return nil, fmt.Errorf("abccc: partial wiring: %w", err)
		}
	}
	return p, nil
}

func (p *Partial) adopt(fullID, partialID int) {
	p.toPartial[fullID] = partialID
	p.toFull = append(p.toFull, fullID)
	if partialID != len(p.toFull)-1 {
		panic("abccc: partial node numbering out of sync")
	}
}

// Network returns the physically deployed network.
func (p *Partial) Network() *topology.Network { return p.net }

// Config returns the target full configuration.
func (p *Partial) Config() Config { return p.full.cfg }

// Crossbars returns the number of deployed crossbars.
func (p *Partial) Crossbars() int { return p.crossbars }

// Properties reports the deployed component counts. Analytic diameter and
// bisection columns are zero: a partial deployment has no closed form and is
// measured instead (see the incremental-deployment experiment).
func (p *Partial) Properties() topology.Properties {
	return topology.Properties{
		Name:        p.net.Name(),
		Servers:     p.net.NumServers(),
		Switches:    p.net.NumSwitches(),
		Links:       p.net.NumLinks(),
		ServerPorts: p.full.cfg.P,
		SwitchPorts: p.full.cfg.N,
	}
}

// Route finds a path between two deployed servers, detouring around the
// not-yet-deployed part of the address space.
func (p *Partial) Route(src, dst int) (topology.Path, error) {
	if err := topology.CheckEndpoints(p.net, src, dst); err != nil {
		return nil, err
	}
	fullPath, err := p.full.RouteAvoidingMultipath(p.toFull[src], p.toFull[dst], p.view)
	if err != nil {
		return nil, fmt.Errorf("abccc: partial route: %w", err)
	}
	path := make(topology.Path, len(fullPath))
	for i, node := range fullPath {
		path[i] = p.toPartial[node]
	}
	return path, nil
}

var _ topology.Topology = (*Partial)(nil)

// Grow deploys one more crossbar and reports the expansion: new components
// only, nothing rewired, nothing upgraded — at the granularity of a single
// crossbar purchase.
func Grow(old *Partial) (*Partial, topology.ExpansionReport, error) {
	if old.crossbars >= old.full.vecs {
		return nil, topology.ExpansionReport{}, fmt.Errorf("abccc: deployment already complete (%d crossbars)", old.crossbars)
	}
	bigger, err := BuildPartial(old.full.cfg, old.crossbars+1)
	if err != nil {
		return nil, topology.ExpansionReport{}, err
	}
	report := topology.ExpansionReport{
		Before:        old.net.Name(),
		After:         bigger.net.Name(),
		ServersBefore: old.net.NumServers(),
		ServersAfter:  bigger.net.NumServers(),
		NewServers:    bigger.net.NumServers() - old.net.NumServers(),
		NewSwitches:   bigger.net.NumSwitches() - old.net.NumSwitches(),
		NewLinks:      bigger.net.NumLinks() - old.net.NumLinks(),
	}
	// Every old cable must exist in the bigger deployment: map via the full
	// address space.
	oldG := old.net.Graph()
	for e := 0; e < oldG.NumEdges(); e++ {
		edge := oldG.Edge(e)
		u := bigger.toPartial[old.toFull[edge.U]]
		v := bigger.toPartial[old.toFull[edge.V]]
		if u != -1 && v != -1 && bigger.net.Graph().EdgeBetween(u, v) != -1 {
			report.PreservedLinks++
		} else {
			report.RewiredLinks++
		}
	}
	for _, fullID := range old.toFull {
		if !old.net.IsServer(old.toPartial[fullID]) {
			continue
		}
		if bigger.net.Graph().Degree(bigger.toPartial[fullID]) > old.full.cfg.P {
			report.UpgradedServers++
		}
	}
	return bigger, report, nil
}
