package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildPartialRange(t *testing.T) {
	cfg := Config{N: 3, K: 1, P: 2}
	if _, err := BuildPartial(cfg, 0); err == nil {
		t.Error("0 crossbars accepted")
	}
	if _, err := BuildPartial(cfg, 10); err == nil {
		t.Error("too many crossbars accepted")
	}
	if _, err := BuildPartial(Config{N: 0}, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPartialConnectedAndRoutableAtEverySize(t *testing.T) {
	for _, cfg := range []Config{{N: 3, K: 1, P: 2}, {N: 2, K: 1, P: 3}, {N: 4, K: 1, P: 3}} {
		full := MustBuild(cfg)
		for m := 1; m <= full.vecs; m++ {
			p, err := BuildPartial(cfg, m)
			if err != nil {
				t.Fatalf("%s m=%d: %v", full.Network().Name(), m, err)
			}
			net := p.Network()
			if !net.Graph().Connected(nil) {
				t.Fatalf("%s: disconnected at %d crossbars", net.Name(), m)
			}
			servers := net.Servers()
			for _, src := range servers {
				for _, dst := range servers {
					path, err := p.Route(src, dst)
					if err != nil {
						t.Fatalf("%s: route %s->%s: %v", net.Name(),
							net.Label(src), net.Label(dst), err)
					}
					if err := path.Validate(net, src, dst); err != nil {
						t.Fatalf("%s: %v", net.Name(), err)
					}
				}
			}
		}
	}
}

func TestPartialFullEqualsComplete(t *testing.T) {
	cfg := Config{N: 3, K: 1, P: 2}
	full := MustBuild(cfg)
	p, err := BuildPartial(cfg, full.vecs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Network().NumServers() != full.Network().NumServers() ||
		p.Network().NumSwitches() != full.Network().NumSwitches() ||
		p.Network().NumLinks() != full.Network().NumLinks() {
		t.Errorf("complete partial %d/%d/%d != full %d/%d/%d",
			p.Network().NumServers(), p.Network().NumSwitches(), p.Network().NumLinks(),
			full.Network().NumServers(), full.Network().NumSwitches(), full.Network().NumLinks())
	}
}

func TestPartialLevelSwitchesNeedTwoMembers(t *testing.T) {
	// With a single crossbar deployed, no level switch can be useful.
	p, err := BuildPartial(Config{N: 3, K: 1, P: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Network().NumSwitches(); got != 1 {
		t.Errorf("1-crossbar deployment has %d switches, want 1 (the local switch)", got)
	}
	if p.Crossbars() != 1 {
		t.Errorf("Crossbars = %d", p.Crossbars())
	}
}

func TestGrowNeverRewires(t *testing.T) {
	cfg := Config{N: 3, K: 1, P: 2}
	p, err := BuildPartial(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for p.Crossbars() < 9 {
		bigger, report, err := Grow(p)
		if err != nil {
			t.Fatalf("grow from %d: %v", p.Crossbars(), err)
		}
		if report.RewiredLinks != 0 {
			t.Errorf("grow %d->%d rewired %d cables", p.Crossbars(), bigger.Crossbars(),
				report.RewiredLinks)
		}
		if report.UpgradedServers != 0 {
			t.Errorf("grow %d->%d upgraded %d servers", p.Crossbars(), bigger.Crossbars(),
				report.UpgradedServers)
		}
		if report.NewServers != cfg.ServersPerCrossbar() {
			t.Errorf("grow added %d servers, want %d", report.NewServers, cfg.ServersPerCrossbar())
		}
		p = bigger
	}
	if _, _, err := Grow(p); err == nil {
		t.Error("growing a complete deployment succeeded")
	}
}

func TestPartialProperties(t *testing.T) {
	p, err := BuildPartial(Config{N: 3, K: 1, P: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	props := p.Properties()
	if props.Servers != 8 { // 4 crossbars x r=2
		t.Errorf("Servers = %d, want 8", props.Servers)
	}
	if props.ServerPorts != 2 || props.SwitchPorts != 3 {
		t.Errorf("ports %d/%d", props.ServerPorts, props.SwitchPorts)
	}
	if props.Name != "ABCCC(3,1,2)/4" {
		t.Errorf("Name = %q", props.Name)
	}
}

func TestPartialRouteErrors(t *testing.T) {
	p, err := BuildPartial(Config{N: 3, K: 1, P: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sw := p.Network().Switches()[0]
	srv := p.Network().Server(0)
	if _, err := p.Route(sw, srv); err == nil {
		t.Error("Route(switch, server) succeeded")
	}
}

func TestPropertyPartialAlwaysRoutable(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{N: 2 + rng.Intn(3), K: rng.Intn(2), P: 2 + rng.Intn(2)}
		if cfg.Validate() != nil {
			return true
		}
		m := 1 + rng.Intn(cfg.NumVectors())
		p, err := BuildPartial(cfg, m)
		if err != nil {
			return false
		}
		net := p.Network()
		if !net.Graph().Connected(nil) {
			return false
		}
		servers := net.Servers()
		for trial := 0; trial < 8; trial++ {
			src := servers[rng.Intn(len(servers))]
			dst := servers[rng.Intn(len(servers))]
			path, err := p.Route(src, dst)
			if err != nil || path.Validate(net, src, dst) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
