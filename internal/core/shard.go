package core

import "repro/internal/topology"

var _ topology.Sharder = (*ABCCC)(nil)

// ShardOf implements topology.Sharder: the partition cuts along the address
// space, keeping whole crossbars — the local switch plus its r servers, the
// tightest traffic locality ABCCC has — inside one shard and assigning each
// level switch to the crossbar of its digit-0 member. Contiguous vector
// ranges share their high address digits, so level-l traffic for l below the
// top digit stays intra-shard and only top-digit hops cross the cut, which
// is exactly the crossbar/level-switch locality the sharded simulator's
// handoff volume depends on.
func (t *ABCCC) ShardOf(id, s int) int {
	block := 1 + t.r // local switch + r servers per crossbar
	if id < t.vecs*block {
		return topology.ContiguousShard(id/block, t.vecs, s)
	}
	// Level switch W(l, cvec): follow its digit-0 attached crossbar.
	lid := id - t.vecs*block
	cvecs := t.vecs / t.cfg.N
	l, cvec := lid/cvecs, lid%cvecs
	return topology.ContiguousShard(t.expand(cvec, l, 0), t.vecs, s)
}
