package core

import (
	"fmt"

	"repro/internal/topology"
)

// NextHop makes the hop-by-hop forwarding decision for a packet currently at
// node cur (a server or a switch) heading for server dst, using only state a
// real device would hold: its own identity and the destination address. The
// deterministic policy corrects the lowest differing address level first:
//
//   - a server that does not own the next level hands the packet to its
//     local switch; one that does sends it across the level switch;
//   - a local switch hands the packet to the member server owning the next
//     level (or to the destination server itself once the vector matches);
//   - a level switch delivers to the port matching the destination's digit.
//
// Iterating NextHop from any source reaches the destination in at most
// 2(k+1)+1 switch hops (the identity-order routed path), which makes the
// structure forwardable with O(1) per-device state — the property the
// distributed emulation layer (package emu) runs on.
func (t *ABCCC) NextHop(cur, dst int) (int, error) {
	if !t.net.IsServer(dst) {
		return 0, fmt.Errorf("abccc: next hop destination %d is not a server", dst)
	}
	if cur == dst {
		return dst, nil
	}
	d := t.addrOf[dst]
	if t.net.IsServer(cur) {
		return t.nextHopFromServer(t.addrOf[cur], d)
	}
	return t.nextHopFromSwitch(cur, d)
}

func (t *ABCCC) nextHopFromServer(c, d Addr) (int, error) {
	l, ok := t.lowestDiffLevel(c.Vec, d.Vec)
	if !ok {
		// Same crossbar, different server: via the local switch.
		return t.localSw[c.Vec], nil
	}
	if t.cfg.Owner(l) == c.J {
		return t.levelSw[l][t.contract(c.Vec, l)], nil
	}
	return t.localSw[c.Vec], nil
}

func (t *ABCCC) nextHopFromSwitch(sw int, d Addr) (int, error) {
	// Identify the switch by probing its neighbors: all neighbors of a
	// local switch share one crossbar; a level-l switch's neighbors differ
	// in digit l. Devices would know their own role; we recover it from the
	// construction tables via the first neighbor.
	nbrs := t.net.Graph().Neighbors(sw, nil)
	if len(nbrs) == 0 {
		return 0, fmt.Errorf("abccc: switch %d has no ports", sw)
	}
	first := t.addrOf[nbrs[0]]
	if t.localSw[first.Vec] == sw {
		// Local switch of crossbar first.Vec.
		if first.Vec == d.Vec {
			return t.servers[d.Vec*t.r+d.J], nil
		}
		l, _ := t.lowestDiffLevel(first.Vec, d.Vec)
		return t.servers[first.Vec*t.r+t.cfg.Owner(l)], nil
	}
	// Level switch: find its level by comparing two neighbors.
	second := t.addrOf[nbrs[1]]
	l, ok := t.lowestDiffLevel(first.Vec, second.Vec)
	if !ok {
		return 0, fmt.Errorf("abccc: cannot classify switch %d", sw)
	}
	target := t.setDigit(first.Vec, l, t.digit(d.Vec, l))
	return t.servers[target*t.r+t.cfg.Owner(l)], nil
}

// lowestDiffLevel returns the lowest level at which the two vectors differ.
func (t *ABCCC) lowestDiffLevel(a, b int) (int, bool) {
	for l := 0; l < t.cfg.Digits(); l++ {
		if t.digit(a, l) != t.digit(b, l) {
			return l, true
		}
	}
	return 0, false
}

// ForwardingWalk iterates NextHop from src until dst is reached, returning
// the full node path. It errors if the walk exceeds the hop budget —
// which would indicate a broken forwarding policy, not a user mistake.
func (t *ABCCC) ForwardingWalk(src, dst int) (topology.Path, error) {
	if err := checkServerPair(t, src, dst); err != nil {
		return nil, err
	}
	budget := 2 * (2*t.cfg.Digits() + 3) // edges: twice the hop bound
	path := topology.Path{src}
	cur := src
	for steps := 0; cur != dst; steps++ {
		if steps > budget {
			return nil, fmt.Errorf("abccc: forwarding walk exceeded %d steps", budget)
		}
		next, err := t.NextHop(cur, dst)
		if err != nil {
			return nil, err
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

func checkServerPair(t *ABCCC, src, dst int) error {
	if !t.net.IsServer(src) {
		return fmt.Errorf("abccc: source %d is not a server", src)
	}
	if !t.net.IsServer(dst) {
		return fmt.Errorf("abccc: destination %d is not a server", dst)
	}
	return nil
}
