package core

import (
	"fmt"
	"io"
	"sort"
)

// Cable is one physical connection in the wiring plan: device labels plus
// the port index on each end.
type Cable struct {
	// A and B are the device labels; APort and BPort the port numbers.
	A     string `json:"a"`
	APort int    `json:"aPort"`
	B     string `json:"b"`
	BPort int    `json:"bPort"`
}

// WiringPlan returns the full cabling list for technicians: every cable
// with deterministic port assignments. Server port 0 always faces the local
// switch; ports 1..p-1 face the level switches of the server's owned levels
// in ascending level order. Switch ports are assigned in the order the
// structure enumerates members (local switches: server index; level
// switches: the varying digit).
func (t *ABCCC) WiringPlan() []Cable {
	var cables []Cable

	// Local cables: server port 0 <-> local switch port j.
	for vec := 0; vec < t.vecs; vec++ {
		for j := 0; j < t.r; j++ {
			cables = append(cables, Cable{
				A:     t.net.Label(t.servers[vec*t.r+j]),
				APort: 0,
				B:     t.net.Label(t.localSw[vec]),
				BPort: j,
			})
		}
	}
	// Level cables: server port 1+(l - j(p-1)) <-> level switch port digit.
	for l := range t.levelSw {
		owner := t.cfg.Owner(l)
		serverPort := 1 + (l - owner*(t.cfg.P-1))
		for cvec, sw := range t.levelSw[l] {
			for d := 0; d < t.cfg.N; d++ {
				vec := t.expand(cvec, l, d)
				cables = append(cables, Cable{
					A:     t.net.Label(t.servers[vec*t.r+owner]),
					APort: serverPort,
					B:     t.net.Label(sw),
					BPort: d,
				})
			}
		}
	}
	sort.Slice(cables, func(i, j int) bool {
		if cables[i].A != cables[j].A {
			return cables[i].A < cables[j].A
		}
		return cables[i].APort < cables[j].APort
	})
	return cables
}

// WriteWiringPlan renders the plan as one line per cable.
func (t *ABCCC) WriteWiringPlan(w io.Writer) error {
	for _, c := range t.WiringPlan() {
		if _, err := fmt.Fprintf(w, "%s port %d <-> %s port %d\n", c.A, c.APort, c.B, c.BPort); err != nil {
			return err
		}
	}
	return nil
}
