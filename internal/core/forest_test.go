package core

import (
	"testing"
)

func TestBroadcastTreeWithOrderEquivalence(t *testing.T) {
	// The ascending order must reproduce BroadcastTree exactly.
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	root := tp.Network().Server(4)
	want, err := tp.BroadcastTree(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.BroadcastTreeWithOrder(root, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("tree sizes %d vs %d", len(got), len(want))
	}
	for dst, p := range want {
		q := got[dst]
		if len(p) != len(q) {
			t.Fatalf("paths to %d differ", dst)
		}
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("paths to %d differ at %d", dst, i)
			}
		}
	}
}

func TestBroadcastTreeWithOrderAnyPermutationIsATree(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 3})
	net := tp.Network()
	root := net.Server(0)
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {0, 2, 1}} {
		tree, err := tp.BroadcastTreeWithOrder(root, order)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree) != net.NumServers() {
			t.Fatalf("order %v: covers %d servers", order, len(tree))
		}
		parent := map[int]int{}
		for dst, p := range tree {
			if err := p.Validate(net, root, dst); err != nil {
				t.Fatalf("order %v: %v", order, err)
			}
			for i := 1; i < len(p); i++ {
				if prev, ok := parent[p[i]]; ok && prev != p[i-1] {
					t.Fatalf("order %v: node %d has two parents", order, p[i])
				}
				parent[p[i]] = p[i-1]
			}
		}
	}
}

func TestBroadcastTreeWithOrderValidation(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	root := tp.Network().Server(0)
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}, {1, 2}} {
		if _, err := tp.BroadcastTreeWithOrder(root, order); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
	if _, err := tp.BroadcastTreeWithOrder(tp.Network().Switches()[0], []int{0, 1}); err == nil {
		t.Error("switch root accepted")
	}
}

func TestBroadcastForestEdgeDisjoint(t *testing.T) {
	for _, cfg := range []Config{{N: 3, K: 1, P: 2}, {N: 4, K: 1, P: 3}, {N: 4, K: 2, P: 3}} {
		tp := MustBuild(cfg)
		net := tp.Network()
		root := net.Server(0)
		forest, err := tp.BroadcastForest(root)
		if err != nil {
			t.Fatal(err)
		}
		if len(forest) < 1 {
			t.Fatalf("%s: empty forest", net.Name())
		}
		used := map[[2]int]bool{}
		for ti, tree := range forest {
			if len(tree) != net.NumServers() {
				t.Fatalf("%s tree %d covers %d servers", net.Name(), ti, len(tree))
			}
			for dst, p := range tree {
				if err := p.Validate(net, root, dst); err != nil {
					t.Fatalf("%s tree %d: %v", net.Name(), ti, err)
				}
			}
			for e := range treeEdges(tree) {
				if used[e] {
					t.Fatalf("%s: trees share directed cable %v", net.Name(), e)
				}
				used[e] = true
			}
		}
	}
}

func TestBroadcastForestMultipleTreesWhenPortsAllow(t *testing.T) {
	// With two digits and distinct rotations, at least two edge-disjoint
	// trees must exist from a server owning both levels.
	tp := MustBuild(Config{N: 4, K: 1, P: 3}) // r=1: the root owns levels 0 and 1
	forest, err := tp.BroadcastForest(tp.Network().Server(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) < 2 {
		t.Errorf("forest has %d trees, want >= 2", len(forest))
	}
}

func TestBroadcastForestSwitchRoot(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0, P: 2})
	if _, err := tp.BroadcastForest(tp.Network().Switches()[0]); err == nil {
		t.Error("switch root accepted")
	}
}

func TestBroadcastForestFullSizeAtRoneConfigs(t *testing.T) {
	// For r == 1 the shifted construction should yield one edge-disjoint
	// tree per address level, with no greedy rejections.
	for _, cfg := range []Config{{N: 3, K: 1, P: 3}, {N: 4, K: 1, P: 3}, {N: 4, K: 2, P: 4}, {N: 2, K: 1, P: 4}} {
		tp := MustBuild(cfg)
		for _, root := range []int{0, tp.Network().NumServers() / 2} {
			forest, err := tp.BroadcastForest(tp.Network().Server(root))
			if err != nil {
				t.Fatal(err)
			}
			if len(forest) != cfg.Digits() {
				t.Errorf("%s root %d: forest size %d, want %d (one per level)",
					tp.Network().Name(), root, len(forest), cfg.Digits())
			}
		}
	}
}

func TestBroadcastForestTreesHaveUniqueParents(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 4})
	root := tp.Network().Server(0)
	forest, err := tp.BroadcastForest(root)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tree := range forest {
		parent := map[int]int{}
		for _, p := range tree {
			for i := 1; i < len(p); i++ {
				if prev, ok := parent[p[i]]; ok && prev != p[i-1] {
					t.Fatalf("tree %d: node %d has parents %d and %d", ti, p[i], prev, p[i-1])
				}
				parent[p[i]] = p[i-1]
			}
		}
	}
}
