package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/topology"
)

// smallConfigs is the grid of instances small enough for exhaustive checks.
func smallConfigs() []Config {
	return []Config{
		{N: 2, K: 0, P: 2},
		{N: 2, K: 1, P: 2},
		{N: 3, K: 1, P: 2},
		{N: 3, K: 2, P: 2},
		{N: 2, K: 1, P: 3},
		{N: 3, K: 2, P: 3},
		{N: 4, K: 2, P: 3},
		{N: 3, K: 2, P: 4},
		{N: 4, K: 3, P: 4},
		{N: 2, K: 0, P: 5},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{name: "ok", cfg: Config{N: 4, K: 1, P: 2}},
		{name: "radix too small", cfg: Config{N: 1, K: 1, P: 2}, wantErr: "radix"},
		{name: "negative order", cfg: Config{N: 4, K: -1, P: 2}, wantErr: "order"},
		{name: "one port", cfg: Config{N: 4, K: 1, P: 1}, wantErr: "ports"},
		{name: "crossbar overflow", cfg: Config{N: 2, K: 3, P: 2}, wantErr: "local switch"},
		{name: "too large", cfg: Config{N: 10, K: 9, P: 2}, wantErr: "MaxServers"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestConfigTooLargeIsErrTooLarge(t *testing.T) {
	err := Config{N: 16, K: 6, P: 2}.Validate()
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("Validate = %v, want ErrTooLarge", err)
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	tests := []struct {
		cfg      Config
		digits   int
		r        int
		vecs     int
		ownerOf2 int
	}{
		{cfg: Config{N: 4, K: 1, P: 2}, digits: 2, r: 2, vecs: 16, ownerOf2: 2},
		{cfg: Config{N: 4, K: 2, P: 3}, digits: 3, r: 2, vecs: 64, ownerOf2: 1},
		{cfg: Config{N: 3, K: 2, P: 4}, digits: 3, r: 1, vecs: 27, ownerOf2: 0},
		{cfg: Config{N: 8, K: 3, P: 2}, digits: 4, r: 4, vecs: 4096, ownerOf2: 2},
	}
	for _, tt := range tests {
		if got := tt.cfg.Digits(); got != tt.digits {
			t.Errorf("%+v Digits = %d, want %d", tt.cfg, got, tt.digits)
		}
		if got := tt.cfg.ServersPerCrossbar(); got != tt.r {
			t.Errorf("%+v ServersPerCrossbar = %d, want %d", tt.cfg, got, tt.r)
		}
		if got := tt.cfg.NumVectors(); got != tt.vecs {
			t.Errorf("%+v NumVectors = %d, want %d", tt.cfg, got, tt.vecs)
		}
		if got := tt.cfg.Owner(2); got != tt.ownerOf2 {
			t.Errorf("%+v Owner(2) = %d, want %d", tt.cfg, got, tt.ownerOf2)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(Config{N: 0, K: 0, P: 0}); err == nil {
		t.Fatal("Build(invalid) succeeded")
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		props := tp.Properties()
		net := tp.Network()
		if net.NumServers() != props.Servers {
			t.Errorf("%s: built %d servers, formula %d", net.Name(), net.NumServers(), props.Servers)
		}
		if net.NumSwitches() != props.Switches {
			t.Errorf("%s: built %d switches, formula %d", net.Name(), net.NumSwitches(), props.Switches)
		}
		if net.NumLinks() != props.Links {
			t.Errorf("%s: built %d links, formula %d", net.Name(), net.NumLinks(), props.Links)
		}
	}
}

func TestBuildDegreesWithinHardware(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		if got := net.MaxDegree(topology.Server); got > cfg.P {
			t.Errorf("%s: server degree %d exceeds %d NIC ports", net.Name(), got, cfg.P)
		}
		if got := net.MaxDegree(topology.Switch); got > cfg.N {
			t.Errorf("%s: switch degree %d exceeds radix %d", net.Name(), got, cfg.N)
		}
	}
}

func TestBuildIsBipartiteServerSwitch(t *testing.T) {
	// Every cable must connect a server to a switch: switches never cable to
	// switches in a server-centric structure, and servers never cable
	// directly to servers in ABCCC.
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		g := net.Graph()
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(e)
			if net.IsServer(int(edge.U)) == net.IsServer(int(edge.V)) {
				t.Fatalf("%s: edge %s-%s joins two %vs", net.Name(),
					net.Label(int(edge.U)), net.Label(int(edge.V)), net.Kind(int(edge.U)))
			}
		}
	}
}

func TestBuildConnected(t *testing.T) {
	for _, cfg := range smallConfigs() {
		tp := MustBuild(cfg)
		if !tp.Network().Graph().Connected(nil) {
			t.Errorf("%s: built network is disconnected", tp.Network().Name())
		}
	}
}

func TestBuildEveryServerOnItsLocalSwitch(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 3})
	for vec := 0; vec < tp.vecs; vec++ {
		for j := 0; j < tp.r; j++ {
			if tp.net.Graph().EdgeBetween(tp.servers[vec*tp.r+j], tp.localSw[vec]) == -1 {
				t.Fatalf("server (%d,%d) not cabled to its local switch", vec, j)
			}
		}
	}
}

func TestLevelSwitchConnectsDigitNeighbors(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	// For every pair of servers on a common level switch, their addresses
	// must differ in exactly that digit, and both must own the level.
	for l := range tp.levelSw {
		owner := tp.cfg.Owner(l)
		for _, sw := range tp.levelSw[l] {
			nbrs := tp.net.Graph().Neighbors(sw, nil)
			if len(nbrs) != tp.cfg.N {
				t.Fatalf("level switch has %d ports used, want %d", len(nbrs), tp.cfg.N)
			}
			for _, s := range nbrs {
				a := tp.addrOf[s]
				if a.J != owner {
					t.Fatalf("level-%d switch cabled to server index %d, want owner %d", l, a.J, owner)
				}
			}
			for i, s1 := range nbrs {
				for _, s2 := range nbrs[i+1:] {
					a1, a2 := tp.addrOf[s1], tp.addrOf[s2]
					diff := tp.DiffLevels(a1, a2)
					if len(diff) != 1 || diff[0] != l {
						t.Fatalf("level-%d switch joins %s and %s (diff %v)",
							l, tp.FormatAddr(a1), tp.FormatAddr(a2), diff)
					}
				}
			}
		}
	}
}

func TestMixedRadixHelpers(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	// vec 21 in base 3 = [2,1,0]: digit0=0, digit1=1, digit2=2.
	vec := 2*9 + 1*3 + 0
	if d := tp.digit(vec, 0); d != 0 {
		t.Errorf("digit0 = %d, want 0", d)
	}
	if d := tp.digit(vec, 1); d != 1 {
		t.Errorf("digit1 = %d, want 1", d)
	}
	if d := tp.digit(vec, 2); d != 2 {
		t.Errorf("digit2 = %d, want 2", d)
	}
	if got := tp.setDigit(vec, 1, 2); got != 2*9+2*3+0 {
		t.Errorf("setDigit = %d", got)
	}
	if got := tp.setDigit(vec, 1, 1); got != vec {
		t.Errorf("setDigit no-op = %d, want %d", got, vec)
	}
	// contract/expand round-trip over all vecs and levels.
	for v := 0; v < tp.vecs; v++ {
		for l := 0; l <= tp.cfg.K; l++ {
			c := tp.contract(v, l)
			if got := tp.expand(c, l, tp.digit(v, l)); got != v {
				t.Fatalf("expand(contract(%d,%d)) = %d", v, l, got)
			}
		}
	}
}

func TestVecString(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	if got := tp.vecString(2*9 + 1*3); got != "[2,1,0]" {
		t.Errorf("vecString = %q, want [2,1,0]", got)
	}
}

func TestMustBuildPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild(invalid) did not panic")
		}
	}()
	MustBuild(Config{N: 0})
}

func TestPropertiesBisectionAndPorts(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 1, P: 2})
	props := tp.Properties()
	if props.SwitchPorts != 4 || props.ServerPorts != 2 {
		t.Errorf("ports = %d/%d, want 4/2", props.SwitchPorts, props.ServerPorts)
	}
	// n=4, k=1: bisection cut = floor(4/2) * 4^1 = 8 links.
	if props.BisectionLinks != 8 {
		t.Errorf("BisectionLinks = %d, want 8", props.BisectionLinks)
	}
	if props.Name != "ABCCC(4,1,2)" {
		t.Errorf("Name = %q", props.Name)
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{N: 4, K: 1, P: 3}
	if got := MustBuild(cfg).Config(); got != cfg {
		t.Errorf("Config() = %+v, want %+v", got, cfg)
	}
}
