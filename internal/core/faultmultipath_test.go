package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestMultipathRoutingNoFailures(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	view := graph.NewView(net.Graph())
	for _, src := range net.Servers()[:10] {
		for _, dst := range net.Servers()[:10] {
			p, err := tp.RouteAvoidingMultipath(src, dst, view)
			if err != nil {
				t.Fatalf("%s->%s: %v", net.Label(src), net.Label(dst), err)
			}
			if err := p.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMultipathRoutingSurvivesPrimaryPathFailure(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2, P: 2})
	net := tp.Network()
	src, _ := tp.NodeOf(Addr{Vec: 0, J: 0})
	dst, _ := tp.NodeOf(Addr{Vec: 26, J: 2})
	primary, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	view.FailNode(primary[1]) // first switch of the primary path
	p, err := tp.RouteAvoidingMultipath(src, dst, view)
	if err != nil {
		t.Fatalf("multipath routing: %v", err)
	}
	if !p.Alive(net, view) {
		t.Error("returned path uses failed components")
	}
}

func TestMultipathRoutingEndpointDown(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	view := graph.NewView(net.Graph())
	view.FailNode(net.Server(3))
	if _, err := tp.RouteAvoidingMultipath(net.Server(0), net.Server(3), view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	if _, err := tp.RouteAvoidingMultipath(net.Switches()[0], net.Server(0), view); err == nil {
		t.Error("switch endpoint accepted")
	}
}

func TestMultipathRoutingSelf(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1, P: 2})
	s := tp.Network().Server(0)
	p, err := tp.RouteAvoidingMultipath(s, s, graph.NewView(tp.Network().Graph()))
	if err != nil || len(p) != 1 {
		t.Errorf("self = %v, %v", p, err)
	}
}

// TestMultipathDominatesAdaptive verifies the delivery-rate claim: on the
// same failure scenarios, the multipath router serves at least every pair
// the adaptive router serves.
func TestMultipathDominatesAdaptive(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2, P: 3})
	net := tp.Network()
	rng := rand.New(rand.NewSource(3))
	view := graph.NewView(net.Graph())
	for _, sw := range net.Switches() {
		if rng.Float64() < 0.10 {
			view.FailNode(sw)
		}
	}
	servers := net.Servers()
	adaptiveWins := 0
	for trial := 0; trial < 200; trial++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst {
			continue
		}
		_, errA := tp.RouteAvoiding(src, dst, view)
		pm, errM := tp.RouteAvoidingMultipath(src, dst, view)
		if errA == nil && errM != nil {
			adaptiveWins++
		}
		if errM == nil {
			if err := pm.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
			if !pm.Alive(net, view) {
				t.Fatal("multipath returned a dead path")
			}
		}
	}
	if adaptiveWins > 0 {
		t.Errorf("adaptive served %d pairs the multipath router missed", adaptiveWins)
	}
}
