package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is the ABCCC address of a server: the crossbar's digit vector (stored
// in mixed-radix form; digit l of the base-n expansion is address level l)
// plus the server's index j inside the crossbar.
type Addr struct {
	// Vec encodes the k+1 base-n digits, level 0 least significant.
	Vec int
	// J is the server index within the crossbar, 0 <= J < r.
	J int
}

// AddrOf returns the address of a server node.
func (t *ABCCC) AddrOf(node int) (Addr, error) {
	if !t.net.IsServer(node) {
		return Addr{}, fmt.Errorf("abccc: node %d is not a server", node)
	}
	return t.addrOf[node], nil
}

// NodeOf returns the node index of the server with the given address.
func (t *ABCCC) NodeOf(a Addr) (int, error) {
	if a.Vec < 0 || a.Vec >= t.vecs || a.J < 0 || a.J >= t.r {
		return 0, fmt.Errorf("abccc: address %s out of range (vecs=%d, r=%d)",
			t.FormatAddr(a), t.vecs, t.r)
	}
	return t.servers[a.Vec*t.r+a.J], nil
}

// Digit returns digit l of the address vector.
func (t *ABCCC) Digit(a Addr, l int) int { return t.digit(a.Vec, l) }

// FormatAddr renders an address as "[a_k,...,a_0|j]".
func (t *ABCCC) FormatAddr(a Addr) string {
	s := t.vecString(a.Vec)
	return s[:len(s)-1] + "|" + strconv.Itoa(a.J) + "]"
}

// ParseAddr parses the FormatAddr representation.
func (t *ABCCC) ParseAddr(s string) (Addr, error) {
	body, ok := strings.CutPrefix(s, "[")
	if !ok {
		return Addr{}, fmt.Errorf("abccc: parse %q: missing '['", s)
	}
	body, ok = strings.CutSuffix(body, "]")
	if !ok {
		return Addr{}, fmt.Errorf("abccc: parse %q: missing ']'", s)
	}
	digitsPart, jPart, ok := strings.Cut(body, "|")
	if !ok {
		return Addr{}, fmt.Errorf("abccc: parse %q: missing '|j'", s)
	}
	fields := strings.Split(digitsPart, ",")
	if len(fields) != t.cfg.Digits() {
		return Addr{}, fmt.Errorf("abccc: parse %q: got %d digits, want %d",
			s, len(fields), t.cfg.Digits())
	}
	vec := 0
	for _, f := range fields { // most significant first
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return Addr{}, fmt.Errorf("abccc: parse %q: %w", s, err)
		}
		if d < 0 || d >= t.cfg.N {
			return Addr{}, fmt.Errorf("abccc: parse %q: digit %d out of base %d", s, d, t.cfg.N)
		}
		vec = vec*t.cfg.N + d
	}
	j, err := strconv.Atoi(strings.TrimSpace(jPart))
	if err != nil {
		return Addr{}, fmt.Errorf("abccc: parse %q: %w", s, err)
	}
	a := Addr{Vec: vec, J: j}
	if _, err := t.NodeOf(a); err != nil {
		return Addr{}, err
	}
	return a, nil
}

// DiffLevels returns the address levels at which the two vectors differ, in
// ascending order.
func (t *ABCCC) DiffLevels(a, b Addr) []int {
	var diff []int
	for l := 0; l < t.cfg.Digits(); l++ {
		if t.digit(a.Vec, l) != t.digit(b.Vec, l) {
			diff = append(diff, l)
		}
	}
	return diff
}
