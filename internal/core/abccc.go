// Package core implements ABCCC — Advanced BCube Connected Crossbars — the
// server-centric data-center network structure of Li & Yang (ICDCS 2015),
// together with its addressing scheme, permutation-driven one-to-one routing,
// parallel-path construction, fault-tolerant routing, one-to-all broadcast
// (the GBC3 extension), and component-preserving expansion.
//
// # Structure
//
// ABCCC(n, k, p) is built from n-port commodity switches and servers with a
// fixed number p of NIC ports. Addresses are (k+1)-digit base-n vectors. Let
// r = ceil((k+1)/(p-1)). For every digit vector a there is a crossbar: one
// local switch L(a) plus r servers S(a,0..r-1), each attached to L(a) by NIC
// port 0. Server S(a,j) "owns" address levels j(p-1) .. j(p-1)+p-2 and uses
// its remaining ports to attach to one level switch per owned level: the
// level-l switch W(l, a minus digit l) interconnects the n servers whose
// addresses differ only in digit l.
//
// With p = 2 this is exactly BCCC(n, k); see package bccc for the
// independent implementation used for cross-validation.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// ErrTooLarge guards against accidentally requesting an instance that would
// not fit in memory.
var ErrTooLarge = errors.New("abccc: requested instance exceeds MaxServers")

// MaxServers bounds the size of a buildable instance (servers + switches).
const MaxServers = 4 << 20

// Config selects an ABCCC instance.
type Config struct {
	// N is the switch radix (ports per switch), n >= 2.
	N int
	// K is the order: addresses have K+1 base-N digits, K >= 0.
	K int
	// P is the number of NIC ports per server, P >= 2. P = 2 yields BCCC.
	P int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("abccc: switch radix N = %d, need >= 2", c.N)
	}
	if c.K < 0 {
		return fmt.Errorf("abccc: order K = %d, need >= 0", c.K)
	}
	if c.P < 2 {
		return fmt.Errorf("abccc: server ports P = %d, need >= 2", c.P)
	}
	r := c.ServersPerCrossbar()
	if r > c.N {
		return fmt.Errorf("abccc: crossbar needs %d servers but local switch has only %d ports (increase N or P, or decrease K)", r, c.N)
	}
	// Overflow-safe size guard.
	vecs := 1
	for i := 0; i <= c.K; i++ {
		if vecs > MaxServers/c.N {
			return fmt.Errorf("%w: N=%d K=%d", ErrTooLarge, c.N, c.K)
		}
		vecs *= c.N
	}
	if r > 0 && vecs > MaxServers/r {
		return fmt.Errorf("%w: N=%d K=%d P=%d", ErrTooLarge, c.N, c.K, c.P)
	}
	return nil
}

// Digits returns the number of address digits, k+1.
func (c Config) Digits() int { return c.K + 1 }

// ServersPerCrossbar returns r = ceil((k+1)/(p-1)).
func (c Config) ServersPerCrossbar() int {
	return (c.Digits() + c.P - 2) / (c.P - 1)
}

// Owner returns the index of the crossbar-local server that owns level l.
func (c Config) Owner(l int) int { return l / (c.P - 1) }

// NumVectors returns n^(k+1), the number of crossbars.
func (c Config) NumVectors() int {
	v := 1
	for i := 0; i <= c.K; i++ {
		v *= c.N
	}
	return v
}

// ABCCC is a built instance. It is immutable after Build and safe for
// concurrent readers.
type ABCCC struct {
	cfg Config
	net *topology.Network

	// servers[vec*r+j] is the node index of S(vec, j).
	servers []int
	// localSw[vec] is the node index of L(vec).
	localSw []int
	// levelSw[l][cvec] is the node index of W(l, cvec) where cvec is the
	// k-digit vector obtained by deleting digit l.
	levelSw [][]int
	// addrOf[node] recovers the address of a server node; nil entry for
	// switches.
	addrOf []Addr

	vecs int // n^(k+1)
	r    int
}

var (
	_ topology.Topology        = (*ABCCC)(nil)
	_ topology.FaultRouter     = (*ABCCC)(nil)
	_ topology.MultipathRouter = (*ABCCC)(nil)
	_ topology.Broadcaster     = (*ABCCC)(nil)
)

// Build constructs the ABCCC(n,k,p) network.
func Build(cfg Config) (*ABCCC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &ABCCC{
		cfg:  cfg,
		net:  topology.NewNetwork(fmt.Sprintf("ABCCC(%d,%d,%d)", cfg.N, cfg.K, cfg.P)),
		vecs: cfg.NumVectors(),
		r:    cfg.ServersPerCrossbar(),
	}
	n, digits := cfg.N, cfg.Digits()

	// Crossbars: local switch + r servers, wired to the local switch.
	t.servers = make([]int, t.vecs*t.r)
	t.localSw = make([]int, t.vecs)
	for vec := 0; vec < t.vecs; vec++ {
		t.localSw[vec] = t.net.AddSwitch("L" + t.vecString(vec))
		for j := 0; j < t.r; j++ {
			id := t.net.AddServer("S" + t.vecString(vec) + "|" + strconv.Itoa(j))
			t.servers[vec*t.r+j] = id
			if err := t.net.Connect(id, t.localSw[vec]); err != nil {
				return nil, fmt.Errorf("abccc: wire local: %w", err)
			}
		}
	}

	// Level switches: W(l, cvec) connects the n servers differing in digit l.
	cvecs := t.vecs / n
	t.levelSw = make([][]int, digits)
	for l := 0; l < digits; l++ {
		t.levelSw[l] = make([]int, cvecs)
		owner := cfg.Owner(l)
		for cvec := 0; cvec < cvecs; cvec++ {
			sw := t.net.AddSwitch("W" + strconv.Itoa(l) + "/" + strconv.Itoa(cvec))
			t.levelSw[l][cvec] = sw
			for d := 0; d < n; d++ {
				vec := t.expand(cvec, l, d)
				if err := t.net.Connect(t.servers[vec*t.r+owner], sw); err != nil {
					return nil, fmt.Errorf("abccc: wire level %d: %w", l, err)
				}
			}
		}
	}

	// Reverse index: node -> address.
	t.addrOf = make([]Addr, t.net.Graph().NumNodes())
	for vec := 0; vec < t.vecs; vec++ {
		for j := 0; j < t.r; j++ {
			t.addrOf[t.servers[vec*t.r+j]] = Addr{Vec: vec, J: j}
		}
	}
	return t, nil
}

// MustBuild is Build for tests and examples with known-good configs.
func MustBuild(cfg Config) *ABCCC {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the instance parameters.
func (t *ABCCC) Config() Config { return t.cfg }

// Network returns the built network.
func (t *ABCCC) Network() *topology.Network { return t.net }

// digit extracts digit l (0 = least significant) from a vector.
func (t *ABCCC) digit(vec, l int) int {
	for i := 0; i < l; i++ {
		vec /= t.cfg.N
	}
	return vec % t.cfg.N
}

// setDigit returns vec with digit l replaced by d.
func (t *ABCCC) setDigit(vec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	old := (vec / pow) % t.cfg.N
	return vec + (d-old)*pow
}

// contract deletes digit l from vec, yielding the level-switch index.
func (t *ABCCC) contract(vec, l int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	low := vec % pow
	high := vec / (pow * t.cfg.N)
	return high*pow + low
}

// expand inserts digit d at position l into the contracted vector cvec.
func (t *ABCCC) expand(cvec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	low := cvec % pow
	high := cvec / pow
	return high*pow*t.cfg.N + d*pow + low
}

// vecString renders a digit vector as [a_k,...,a_0].
func (t *ABCCC) vecString(vec int) string {
	var b strings.Builder
	b.WriteByte('[')
	for l := t.cfg.K; l >= 0; l-- {
		b.WriteString(strconv.Itoa(t.digit(vec, l)))
		if l > 0 {
			b.WriteByte(',')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Properties returns the closed-form comparison-table row; see
// Config.Properties.
func (t *ABCCC) Properties() topology.Properties { return t.cfg.Properties() }

// Properties returns the closed-form comparison-table row without building
// the instance. The analytic diameter is (k+1) + r for r >= 2 and k+1 for
// r == 1, in switch hops (verified tight against BFS by the test suite); the
// bisection figure is the canonical highest-digit cut of floor(n/2)*n^k
// level-k links (exact for even n).
func (c Config) Properties() topology.Properties {
	digits, r, vecs := c.Digits(), c.ServersPerCrossbar(), c.NumVectors()
	diameter := digits + r
	if r == 1 {
		diameter = digits
	}
	return topology.Properties{
		Name:           fmt.Sprintf("ABCCC(%d,%d,%d)", c.N, c.K, c.P),
		Servers:        r * vecs,
		Switches:       vecs + digits*(vecs/c.N),
		Links:          (r + digits) * vecs,
		ServerPorts:    c.P,
		SwitchPorts:    c.N,
		Diameter:       diameter,
		DiameterLinks:  2 * diameter, // server-switch bipartite: 2 cables per hop
		BisectionLinks: (c.N / 2) * (vecs / c.N),
	}
}
