package core

import (
	"fmt"

	"repro/internal/topology"
)

// BroadcastTree returns, for every server in the network, the path a
// one-to-all broadcast from root takes to reach it (the GBC3 extension of
// ABCCC). The paths form a tree: every node has a unique predecessor and
// every cable carries the broadcast at most once.
//
// Construction: crossbars are visited by correcting address levels in
// ascending order (so each crossbar has a unique ascending assignment
// sequence from the root's crossbar, hence a unique parent), and within each
// crossbar the entry server fans out to its siblings through the local
// switch.
func (t *ABCCC) BroadcastTree(root int) (map[int]topology.Path, error) {
	if !t.net.IsServer(root) {
		return nil, fmt.Errorf("abccc: broadcast root %d is not a server", root)
	}
	ra := t.addrOf[root]
	out := make(map[int]topology.Path, t.vecs*t.r)

	// visit delivers to every server of crossbar vec (entered at server
	// entryJ via entryPath) and recurses into child crossbars obtained by
	// changing levels >= minLevel.
	var visit func(vec int, entryJ int, entryPath topology.Path, minLevel int)
	visit = func(vec, entryJ int, entryPath topology.Path, minLevel int) {
		out[t.servers[vec*t.r+entryJ]] = entryPath
		// Local fan-out to siblings.
		for j := 0; j < t.r; j++ {
			if j == entryJ {
				continue
			}
			p := appendPath(entryPath, t.localSw[vec], t.servers[vec*t.r+j])
			out[t.servers[vec*t.r+j]] = p
		}
		// Recurse across level switches.
		for l := minLevel; l < t.cfg.Digits(); l++ {
			owner := t.cfg.Owner(l)
			// The relay path to the level's owner inside this crossbar.
			relay := entryPath
			if owner != entryJ {
				relay = out[t.servers[vec*t.r+owner]]
			}
			lsw := t.levelSw[l][t.contract(vec, l)]
			cur := t.digit(vec, l)
			for d := 0; d < t.cfg.N; d++ {
				if d == cur {
					continue
				}
				child := t.setDigit(vec, l, d)
				p := appendPath(relay, lsw, t.servers[child*t.r+owner])
				visit(child, owner, p, l+1)
			}
		}
	}
	visit(ra.Vec, ra.J, topology.Path{root}, 0)
	return out, nil
}

// BroadcastDepth returns the maximum switch-hop distance from root to any
// server in the broadcast tree.
func (t *ABCCC) BroadcastDepth(root int) (int, error) {
	tree, err := t.BroadcastTree(root)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, p := range tree {
		if h := p.SwitchHops(t.net); h > max {
			max = h
		}
	}
	return max, nil
}

// Multicast returns paths from root to each of the given destination
// servers, pruned from the broadcast tree so that shared prefixes are
// transmitted once (the GBC3 one-to-many primitive).
func (t *ABCCC) Multicast(root int, dsts []int) (map[int]topology.Path, error) {
	tree, err := t.BroadcastTree(root)
	if err != nil {
		return nil, err
	}
	out := make(map[int]topology.Path, len(dsts))
	for _, d := range dsts {
		p, ok := tree[d]
		if !ok {
			return nil, fmt.Errorf("abccc: multicast destination %d is not a server", d)
		}
		out[d] = p
	}
	return out, nil
}

// appendPath copies base and appends the extra nodes, so that tree branches
// sharing a prefix do not alias each other's backing arrays.
func appendPath(base topology.Path, extra ...int) topology.Path {
	p := make(topology.Path, 0, len(base)+len(extra))
	p = append(p, base...)
	return append(p, extra...)
}
