package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// randomConfig draws a small valid configuration from a seed.
func randomConfig(rng *rand.Rand) Config {
	for {
		cfg := Config{
			N: 2 + rng.Intn(4), // 2..5
			K: rng.Intn(3),     // 0..2
			P: 2 + rng.Intn(4), // 2..5
		}
		if cfg.Validate() == nil && cfg.Properties().Servers <= 700 {
			return cfg
		}
	}
}

// TestPropertyRandomConfigsStructurallySound fuzzes the construction: for
// random valid configs, the built instance must match its closed forms,
// respect hardware limits, stay connected, and route validly between random
// pairs under every strategy.
func TestPropertyRandomConfigsStructurallySound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		tp, err := Build(cfg)
		if err != nil {
			return false
		}
		net := tp.Network()
		props := tp.Properties()
		if net.NumServers() != props.Servers ||
			net.NumSwitches() != props.Switches ||
			net.NumLinks() != props.Links {
			return false
		}
		if net.MaxDegree(topology.Server) > cfg.P || net.MaxDegree(topology.Switch) > cfg.N {
			return false
		}
		if !net.Graph().Connected(nil) {
			return false
		}
		servers := net.Servers()
		for trial := 0; trial < 10; trial++ {
			src := servers[rng.Intn(len(servers))]
			dst := servers[rng.Intn(len(servers))]
			for _, s := range allStrategies() {
				p, err := tp.RouteWithStrategy(src, dst, s, seed)
				if err != nil || p.Validate(net, src, dst) != nil {
					return false
				}
				if p.SwitchHops(net) > props.Diameter+cfg.ServersPerCrossbar() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExpansionAlwaysZeroTouch fuzzes the expansion invariant.
func TestPropertyExpansionAlwaysZeroTouch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		next := Config{N: cfg.N, K: cfg.K + 1, P: cfg.P}
		if next.Validate() != nil || next.Properties().Servers > 3000 {
			return true // unexpandable or too big to fuzz; vacuously fine
		}
		old := MustBuild(cfg)
		_, report, err := Expand(old)
		if err != nil {
			return false
		}
		return report.RewiredLinks == 0 && report.UpgradedServers == 0 &&
			report.PreservedLinks == old.Network().NumLinks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBroadcastCoversAndBounds fuzzes the broadcast invariants.
func TestPropertyBroadcastCoversAndBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		tp := MustBuild(cfg)
		net := tp.Network()
		root := net.Server(rng.Intn(net.NumServers()))
		tree, err := tp.BroadcastTree(root)
		if err != nil || len(tree) != net.NumServers() {
			return false
		}
		bound := cfg.Digits() + cfg.ServersPerCrossbar() + 1
		for dst, p := range tree {
			if p.Validate(net, root, dst) != nil || p.SwitchHops(net) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
