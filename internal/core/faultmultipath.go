package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// RouteAvoidingMultipath is the source-routed flavor of fault-tolerant
// routing: it first tries the precomputed internally disjoint parallel paths
// (an endpoint with p ports can survive p-1 independent failures on its
// primary paths), then falls back to the adaptive detour walk of
// RouteAvoiding. It strictly dominates RouteAvoiding in delivery rate at the
// cost of the parallel-path computation.
func (t *ABCCC) RouteAvoidingMultipath(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	if !view.NodeUp(src) || !view.NodeUp(dst) {
		return nil, fmt.Errorf("%w: endpoint failed", ErrNoRoute)
	}
	if src == dst {
		return topology.Path{src}, nil
	}
	for _, p := range t.ParallelPaths(src, dst) {
		if p.Alive(t.net, view) {
			return p, nil
		}
	}
	return t.RouteAvoiding(src, dst, view)
}
