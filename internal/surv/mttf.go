package surv

import (
	"fmt"
	"math"
)

// Estimate is a sample-mean estimate with a two-sided Student-t confidence
// interval: Mean ± t(N−1, level)·Std/√N. With fewer than two uncensored
// samples the mean/interval fields are NaN (there is nothing to average or
// no spread to estimate); Censored counts trials that never reached the
// event inside their horizon and therefore contribute no sample — the
// estimator makes no lifetime assumption, so censored trials are reported,
// not imputed.
type Estimate struct {
	N        int // uncensored samples
	Censored int
	Mean     float64
	Std      float64 // sample standard deviation (n−1 denominator)
	Level    float64 // confidence level of [Lo, Hi]
	Lo, Hi   float64
}

// Two-sided Student-t critical values t(df, level) for df 1..30; beyond 30
// the normal quantile is used. Indexed [df-1].
var tTable = map[float64][30]float64{
	0.90: {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697},
	0.95: {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042},
	0.99: {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750},
}

var zTable = map[float64]float64{0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

// tCritical returns the two-sided critical value for the given degrees of
// freedom and confidence level.
func tCritical(df int, level float64) (float64, error) {
	tbl, ok := tTable[level]
	if !ok || df < 1 {
		return 0, fmt.Errorf("surv: no t-table for level %v (have 0.90, 0.95, 0.99)", level)
	}
	if df <= len(tbl) {
		return tbl[df-1], nil
	}
	return zTable[level], nil
}

// EstimateMean computes the sample mean of the uncensored samples with a
// Student-t confidence interval at the given level (0.90, 0.95, or 0.99).
// This is the MTTF estimator of the survivability suite: samples are
// per-trial times to first partition, censored is the count of trials whose
// horizon expired first.
func EstimateMean(samples []float64, censored int, level float64) (Estimate, error) {
	if _, err := tCritical(1, level); err != nil {
		return Estimate{}, err
	}
	est := Estimate{N: len(samples), Censored: censored, Level: level,
		Mean: math.NaN(), Std: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	if est.N == 0 {
		return est, nil
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	est.Mean = sum / float64(est.N)
	if est.N == 1 {
		return est, nil
	}
	var ss float64
	for _, x := range samples {
		d := x - est.Mean
		ss += d * d
	}
	est.Std = math.Sqrt(ss / float64(est.N-1))
	t, err := tCritical(est.N-1, level)
	if err != nil {
		return Estimate{}, err
	}
	half := t * est.Std / math.Sqrt(float64(est.N))
	est.Lo, est.Hi = est.Mean-half, est.Mean+half
	return est, nil
}
