package surv

import (
	"math/rand"
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

// bruteCritical reports whether failing node v in addition to view
// disconnects some pair of servers that was connected with v up.
func bruteCriticalNode(net *topology.Network, base func() *graph.View, v int) bool {
	before := connectedServerPairs(net, base())
	after := base()
	after.FailNode(v)
	lost := before - connectedServerPairs(net, after)
	// Pairs involving v itself vanish trivially; only damage to others
	// counts as criticality.
	if net.IsServer(v) {
		withV := base()
		res := net.Graph().BFS(v, withV)
		reach := int64(0)
		for _, s := range net.Servers() {
			if s != v && withV.NodeUp(s) && res.Dist[s] != graph.Unreachable {
				reach++
			}
		}
		lost -= reach
	}
	return lost > 0
}

func bruteCriticalLink(net *topology.Network, base func() *graph.View, e int) bool {
	before := connectedServerPairs(net, base())
	after := base()
	after.FailEdge(e)
	return connectedServerPairs(net, after) < before
}

// connectedServerPairs counts mutually reachable alive server pairs by BFS.
func connectedServerPairs(net *topology.Network, view *graph.View) int64 {
	g := net.Graph()
	servers := net.Servers()
	seen := make([]bool, g.NumNodes())
	scratch := graph.NewBFSScratch(g.NumNodes())
	var pairs int64
	for _, s := range servers {
		if seen[s] || !view.NodeUp(s) {
			continue
		}
		res := g.BFSScratched(s, view, scratch)
		var w int64
		for _, s2 := range servers {
			if view.NodeUp(s2) && res.Dist[s2] != graph.Unreachable {
				seen[s2] = true
				w++
			}
		}
		pairs += w * (w - 1) / 2
	}
	return pairs
}

// TestCriticalityMatchesBruteForce mirrors TestPropertyBridgesMatchBruteForce
// at the server-pair level: on small ABCCC and BCube instances — pristine
// and under random degradation — a node or link appears in the criticality
// ranking iff its removal disconnects some previously connected server pair,
// and its PairsLost matches the brute-force recount.
func TestCriticalityMatchesBruteForce(t *testing.T) {
	nets := []*topology.Network{
		core.MustBuild(core.Config{N: 3, K: 1, P: 2}).Network(),
		bcube.MustBuild(bcube.Config{N: 3, K: 1}).Network(),
	}
	for _, net := range nets {
		g := net.Graph()
		for round := 0; round < 4; round++ {
			rng := rand.New(rand.NewSource(int64(round)))
			var downNodes, downEdges []int
			if round > 0 { // round 0 analyzes the pristine network
				for _, sw := range net.Switches() {
					if rng.Intn(4) == 0 {
						downNodes = append(downNodes, sw)
					}
				}
				for e := 0; e < g.NumEdges(); e++ {
					if rng.Intn(5) == 0 {
						downEdges = append(downEdges, e)
					}
				}
			}
			base := func() *graph.View {
				v := graph.NewView(g)
				for _, n := range downNodes {
					v.FailNode(n)
				}
				for _, e := range downEdges {
					v.FailEdge(e)
				}
				return v
			}
			var view *graph.View
			if round > 0 {
				view = base()
			}
			rep, err := Criticality(net, view)
			if err != nil {
				t.Fatalf("%s round %d: %v", net.Name(), round, err)
			}
			if got, want := rep.ConnectedPairs, connectedServerPairs(net, base()); got != want {
				t.Fatalf("%s round %d: ConnectedPairs=%d brute %d", net.Name(), round, got, want)
			}
			inNodes := map[int]int64{}
			for _, it := range rep.Nodes {
				inNodes[it.Index] = it.PairsLost
			}
			inLinks := map[int]int64{}
			for _, it := range rep.Links {
				inLinks[it.Index] = it.PairsLost
			}
			for v := 0; v < g.NumNodes(); v++ {
				if !base().NodeUp(v) {
					continue
				}
				_, ranked := inNodes[v]
				if brute := bruteCriticalNode(net, base, v); ranked != brute {
					t.Fatalf("%s round %d node %d (%s): ranked=%v brute=%v",
						net.Name(), round, v, net.Label(v), ranked, brute)
				}
			}
			for e := 0; e < g.NumEdges(); e++ {
				if !base().EdgeUp(e) {
					continue
				}
				_, ranked := inLinks[e]
				if brute := bruteCriticalLink(net, base, e); ranked != brute {
					t.Fatalf("%s round %d link %d: ranked=%v brute=%v", net.Name(), round, e, ranked, brute)
				}
			}
			// Exact impact values: re-derive via the pair recount.
			for _, it := range rep.Links {
				before := rep.ConnectedPairs
				after := base()
				after.FailEdge(it.Index)
				if want := before - connectedServerPairs(net, after); it.PairsLost != want {
					t.Fatalf("%s round %d link %d: PairsLost=%d want %d",
						net.Name(), round, it.Index, it.PairsLost, want)
				}
			}
		}
	}
}

// TestCriticalityPristineConformance pins the articulation-point/bridge
// cross-check and the paper-facing shape: healthy multi-homed cube networks
// have zero critical components, and the graph AP/bridge counts are filled.
func TestCriticalityPristineConformance(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	rep, err := Criticality(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GraphAPs < 0 || rep.GraphBridges < 0 {
		t.Fatalf("pristine analysis left AP/bridge counts unset: %d/%d", rep.GraphAPs, rep.GraphBridges)
	}
	if len(rep.Nodes) > rep.GraphAPs {
		t.Fatalf("%d critical nodes exceed %d articulation points", len(rep.Nodes), rep.GraphAPs)
	}
	if len(rep.Links) > rep.GraphBridges {
		t.Fatalf("%d critical links exceed %d bridges", len(rep.Links), rep.GraphBridges)
	}
	// ABCCC(4,1,2) is multi-homed (p=2): no single component severs pairs.
	if rep.CriticalServers+rep.CriticalSwitches+rep.CriticalLinks != 0 {
		t.Fatalf("healthy ABCCC(4,1,2) reports critical components: %+v", rep)
	}

	// The bridge network is all criticality: each server and the cable.
	brep, err := Criticality(bridgeNet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if brep.CriticalLinks != 1 || len(brep.Links) != 1 || brep.Links[0].PairsLost != 1 {
		t.Fatalf("bridge network links: %+v", brep.Links)
	}
	if brep.GraphBridges != 1 {
		t.Fatalf("bridge network GraphBridges = %d, want 1", brep.GraphBridges)
	}
}
