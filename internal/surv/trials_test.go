package surv

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/failure"
)

func survClasses() []failure.ClassRate {
	return []failure.ClassRate{
		{Kind: failure.Switches, MTBFSec: 50, MTTRSec: 4},
		{Kind: failure.Links, MTBFSec: 200, MTTRSec: 2},
	}
}

// TestRunTrialsWorkerInvariant: the aggregated Stats are byte-identical for
// any worker-pool width — trials land in indexed slots and every fold walks
// them in trial order.
func TestRunTrialsWorkerInvariant(t *testing.T) {
	net := abcccNet(t)
	base := TrialConfig{
		Classes:        survClasses(),
		Churn:          true,
		HorizonSec:     30,
		Trials:         12,
		Seed:           7,
		SampleEverySec: 5,
		Thresholds:     []float64{0.9},
	}
	var ref *Stats
	for _, workers := range []int{1, 3, 7} {
		cfg := base
		cfg.Workers = workers
		st, err := RunTrials(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = st
			continue
		}
		if !reflect.DeepEqual(st, ref) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
	if len(ref.MeanCurve) == 0 {
		t.Fatal("full-horizon run produced no mean curve")
	}
	if len(ref.Below) != 1 {
		t.Fatalf("got %d threshold estimates, want 1", len(ref.Below))
	}
	if got := ref.MTTF.N + ref.MTTF.Censored; got != base.Trials {
		t.Fatalf("MTTF accounts for %d trials, want %d", got, base.Trials)
	}
	// The curve starts healthy.
	if c0 := ref.MeanCurve[0]; c0.TimeSec != 0 || c0.ReachableFrac != 1 {
		t.Fatalf("mean curve starts at %+v, want frac 1 at t=0", c0)
	}
}

// TestRunTrialsStopAtPartition: the fast-MTTF path skips the mean curve and
// reruns deterministically.
func TestRunTrialsStopAtPartition(t *testing.T) {
	net := abcccNet(t)
	cfg := TrialConfig{
		Classes:         survClasses(),
		Churn:           true,
		HorizonSec:      60,
		Trials:          6,
		Seed:            3,
		StopAtPartition: true,
	}
	a, err := RunTrials(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different stats")
	}
	if len(a.MeanCurve) != 0 {
		t.Fatal("StopAtPartition run still averaged curves")
	}
	for i, r := range a.Trials {
		if r.Partitioned && r.StoppedSec != r.FirstPartitionSec {
			t.Fatalf("trial %d ran past its partition: stopped %v, partition %v",
				i, r.StoppedSec, r.FirstPartitionSec)
		}
	}
}

func TestRunTrialsRejectsBadConfig(t *testing.T) {
	net := abcccNet(t)
	bad := []TrialConfig{
		{Classes: survClasses(), HorizonSec: 10},                        // Trials 0
		{Classes: survClasses(), HorizonSec: 10, Trials: 2, Level: 0.5}, // no t-table
		{HorizonSec: 10, Trials: 2},                                     // no classes
		{Classes: []failure.ClassRate{{Kind: failure.Links, MTBFSec: -1}},
			HorizonSec: 10, Trials: 2}, // bad rate
		{Classes: []failure.ClassRate{{Kind: failure.Links, MTBFSec: 5}},
			Churn: true, HorizonSec: 10, Trials: 2}, // churn needs MTTR
	}
	for i, cfg := range bad {
		if _, err := RunTrials(net, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

// TestRunTrialsAllCensored: a horizon too short for any partition yields a
// fully censored NaN estimate rather than a fabricated MTTF.
func TestRunTrialsAllCensored(t *testing.T) {
	net := abcccNet(t)
	st, err := RunTrials(net, TrialConfig{
		Classes:    []failure.ClassRate{{Kind: failure.Links, MTBFSec: 1e9}},
		HorizonSec: 1,
		Trials:     4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MTTF.Censored != 4 || st.MTTF.N != 0 || !math.IsNaN(st.MTTF.Mean) {
		t.Fatalf("all-censored batch: %+v", st.MTTF)
	}
}
