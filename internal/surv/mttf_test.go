package surv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/failure"
)

// TestEstimateMeanExact pins the estimator arithmetic on a hand-computable
// sample: mean 3, sample std 1, t(3, 0.95) = 3.182.
func TestEstimateMeanExact(t *testing.T) {
	est, err := EstimateMean([]float64{2, 3, 3, 4}, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 4 || est.Censored != 2 || est.Level != 0.95 {
		t.Fatalf("shape: %+v", est)
	}
	if est.Mean != 3 {
		t.Fatalf("mean = %v, want 3", est.Mean)
	}
	wantStd := math.Sqrt(2.0 / 3.0)
	if math.Abs(est.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", est.Std, wantStd)
	}
	half := 3.182 * wantStd / 2
	if math.Abs(est.Lo-(3-half)) > 1e-12 || math.Abs(est.Hi-(3+half)) > 1e-12 {
		t.Fatalf("CI = [%v, %v], want 3 ± %v", est.Lo, est.Hi, half)
	}
}

func TestEstimateMeanDegenerate(t *testing.T) {
	est, err := EstimateMean(nil, 5, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 0 || est.Censored != 5 || !math.IsNaN(est.Mean) || !math.IsNaN(est.Lo) {
		t.Fatalf("all-censored estimate: %+v", est)
	}
	est, err = EstimateMean([]float64{7}, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 7 || !math.IsNaN(est.Std) || !math.IsNaN(est.Lo) || !math.IsNaN(est.Hi) {
		t.Fatalf("single-sample estimate: %+v", est)
	}
	if _, err := EstimateMean([]float64{1, 2}, 0, 0.8); err == nil {
		t.Error("unsupported level accepted")
	}
}

func TestTCritical(t *testing.T) {
	cases := []struct {
		df    int
		level float64
		want  float64
	}{
		{1, 0.95, 12.706}, {4, 0.95, 2.776}, {30, 0.95, 2.042},
		{31, 0.95, 1.960}, {1000, 0.99, 2.576}, {10, 0.90, 1.812},
	}
	for _, c := range cases {
		got, err := tCritical(c.df, c.level)
		if err != nil || got != c.want {
			t.Errorf("tCritical(%d, %v) = %v, %v; want %v", c.df, c.level, got, err, c.want)
		}
	}
	if _, err := tCritical(0, 0.95); err == nil {
		t.Error("df=0 accepted")
	}
}

// TestEstimateCoverageExponential checks the advertised interval semantics on
// the closed-form case: batches of iid Exp(mean 5) lifetimes, 95% CIs. The
// seed is fixed, so the observed coverage is deterministic; it must sit in a
// generous band around the nominal level (exponential samples are skewed, so
// small-sample t coverage runs a little under 95%).
func TestEstimateCoverageExponential(t *testing.T) {
	const (
		mean    = 5.0
		batches = 200
		perN    = 12
	)
	rng := rand.New(rand.NewSource(99))
	hits := 0
	for b := 0; b < batches; b++ {
		samples := make([]float64, perN)
		for i := range samples {
			samples[i] = rng.ExpFloat64() * mean
		}
		est, err := EstimateMean(samples, 0, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo <= mean && mean <= est.Hi {
			hits++
		}
	}
	cov := float64(hits) / batches
	if cov < 0.85 || cov > 1 {
		t.Fatalf("coverage %v over %d batches, want ≈0.95", cov, batches)
	}
}

// TestMTTFClosedFormBridge is the end-to-end closed-form check: on the
// two-server bridge network under link wear-out, time-to-first-partition IS
// the cable's Exp(MTBF) lifetime, so the estimated MTTF must match the known
// per-trial draws exactly and its CI must contain the true mean.
func TestMTTFClosedFormBridge(t *testing.T) {
	const (
		mtbf    = 8.0
		trials  = 120
		horizon = mtbf * 200 // censoring probability e^-200 ≈ 0
	)
	net := bridgeNet()
	st, err := RunTrials(net, TrialConfig{
		Classes:         []failure.ClassRate{{Kind: failure.Links, MTBFSec: mtbf}},
		HorizonSec:      horizon,
		Trials:          trials,
		Seed:            42,
		StopAtPartition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MTTF.N != trials || st.MTTF.Censored != 0 {
		t.Fatalf("N=%d censored=%d, want %d uncensored trials", st.MTTF.N, st.MTTF.Censored, trials)
	}
	// Each trial's partition time is exactly its seed's first Exp draw.
	var sum float64
	for i, r := range st.Trials {
		want := rand.New(rand.NewSource(42+int64(i))).ExpFloat64() * mtbf
		if r.FirstPartitionSec != want {
			t.Fatalf("trial %d partitioned at %v, closed form %v", i, r.FirstPartitionSec, want)
		}
		sum += want
	}
	if got, want := st.MTTF.Mean, sum/trials; math.Abs(got-want) > 1e-9 {
		t.Fatalf("MTTF mean %v, want %v", got, want)
	}
	// CI contains the true mean for this seed (and is sane: Lo < Mean < Hi).
	if !(st.MTTF.Lo < st.MTTF.Mean && st.MTTF.Mean < st.MTTF.Hi) {
		t.Fatalf("degenerate CI: %+v", st.MTTF)
	}
	if st.MTTF.Lo > mtbf || st.MTTF.Hi < mtbf {
		t.Fatalf("95%% CI [%v, %v] misses true MTTF %v", st.MTTF.Lo, st.MTTF.Hi, mtbf)
	}
	// Short horizons censor instead of inventing lifetimes.
	short, err := RunTrials(net, TrialConfig{
		Classes:         []failure.ClassRate{{Kind: failure.Links, MTBFSec: mtbf}},
		HorizonSec:      mtbf / 100,
		Trials:          10,
		Seed:            42,
		StopAtPartition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if short.MTTF.N+short.MTTF.Censored != 10 || short.MTTF.Censored == 0 {
		t.Fatalf("tiny horizon censoring: %+v", short.MTTF)
	}
}
