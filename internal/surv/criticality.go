package surv

import (
	"fmt"
	"sort"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Item is one ranked component: removing it alone would disconnect
// PairsLost currently-connected server pairs (Frac of all currently
// connected pairs).
type Item struct {
	Kind      failure.Kind
	Index     int
	Label     string
	PairsLost int64
	Frac      float64
}

// Report ranks a network's components by removal impact on server-pair
// connectivity, the criticality measure of the survivability suite.
type Report struct {
	// ConnectedPairs is the number of reachable server pairs in the
	// analyzed view (the denominator of every Frac).
	ConnectedPairs int64
	// CriticalServers/CriticalSwitches/CriticalLinks count components
	// whose single removal disconnects at least one server pair.
	CriticalServers  int
	CriticalSwitches int
	CriticalLinks    int
	// Nodes and Links rank the positive-impact components, heaviest first
	// (ties by index).
	Nodes []Item
	Links []Item
	// GraphAPs and GraphBridges are the whole-graph articulation-point and
	// bridge counts (computed only for a pristine analysis, -1 otherwise).
	// Server-pair-critical components are always a subset of these: a cut
	// vertex that only strands switches costs no server pairs.
	GraphAPs     int
	GraphBridges int
}

// Criticality ranks every alive node and link of net by the server pairs
// its removal would disconnect, using the weighted cut-impact DFS. A nil
// view analyzes the pristine network; a degraded view ranks the survivors —
// healthy 2-connected DCN structures have no critical components, so the
// interesting rankings come from degraded snapshots.
//
// On a pristine analysis the ranking is cross-checked against the classic
// graph.ArticulationPoints and graph.Bridges sets: every component with
// positive server-pair impact must be an articulation point or bridge of
// the graph. A violation returns an error — it would mean the incremental
// scoring and the low-link algorithms disagree, which no valid input can
// cause.
func Criticality(net *topology.Network, view *graph.View) (*Report, error) {
	g := net.Graph()
	weight := make([]int64, g.NumNodes())
	for _, s := range net.Servers() {
		weight[s] = 1
	}
	nodeImpact, linkImpact := g.CutImpact(view, weight)

	// Connected pairs under the view, from an incremental tracker loaded
	// with the view's failures (reusing the brute-force-tested machinery).
	d := graph.NewDynConn(g, weight)
	pristine := true
	for v := 0; v < g.NumNodes(); v++ {
		if !view.NodeUp(v) {
			d.FailNode(v)
			pristine = false
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !view.EdgeUp(e) {
			d.FailEdge(e)
			pristine = false
		}
	}
	rep := &Report{ConnectedPairs: d.Pairs(), GraphAPs: -1, GraphBridges: -1}

	for v := 0; v < g.NumNodes(); v++ {
		if nodeImpact[v] <= 0 {
			continue
		}
		if net.IsServer(v) {
			rep.CriticalServers++
		} else {
			rep.CriticalSwitches++
		}
		kind := failure.Switches
		if net.IsServer(v) {
			kind = failure.Servers
		}
		rep.Nodes = append(rep.Nodes, Item{
			Kind: kind, Index: v, Label: net.Label(v),
			PairsLost: nodeImpact[v], Frac: frac(nodeImpact[v], rep.ConnectedPairs),
		})
	}
	for e := 0; e < g.NumEdges(); e++ {
		if linkImpact[e] <= 0 {
			continue
		}
		rep.CriticalLinks++
		ge := g.Edge(e)
		rep.Links = append(rep.Links, Item{
			Kind: failure.Links, Index: e,
			Label:     fmt.Sprintf("%s-%s", net.Label(int(ge.U)), net.Label(int(ge.V))),
			PairsLost: linkImpact[e], Frac: frac(linkImpact[e], rep.ConnectedPairs),
		})
	}
	byImpact := func(items []Item) {
		sort.Slice(items, func(i, j int) bool {
			if items[i].PairsLost != items[j].PairsLost {
				return items[i].PairsLost > items[j].PairsLost
			}
			return items[i].Index < items[j].Index
		})
	}
	byImpact(rep.Nodes)
	byImpact(rep.Links)

	if pristine {
		aps := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			aps[v] = true
		}
		rep.GraphAPs = len(aps)
		for _, it := range rep.Nodes {
			if !aps[it.Index] {
				return nil, fmt.Errorf("surv: node %d (%s) severs %d server pairs but is not an articulation point",
					it.Index, it.Label, it.PairsLost)
			}
		}
		bridges := map[int]bool{}
		for _, e := range g.Bridges() {
			bridges[e] = true
		}
		rep.GraphBridges = len(bridges)
		for _, it := range rep.Links {
			if !bridges[it.Index] {
				return nil, fmt.Errorf("surv: link %d (%s) severs %d server pairs but is not a bridge",
					it.Index, it.Label, it.PairsLost)
			}
		}
	}
	return rep, nil
}

func frac(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
