package surv

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/topology"
)

// TrialConfig parameterizes RunTrials: many independent seeded lifetime
// replays of one network, aggregated into MTTF and threshold estimates.
type TrialConfig struct {
	// Classes gives the per-component failure rates (failure.ClassRate).
	Classes []failure.ClassRate
	// Churn selects repairable Poisson churn (failure.Schedule) instead of
	// the default no-repair wear-out (failure.Wearout).
	Churn bool
	// HorizonSec bounds every trial.
	HorizonSec float64
	// Trials is the number of independent replays; trial i is seeded
	// Seed+i, so a (Seed, Trials) pair fully determines every schedule.
	Trials int
	Seed   int64
	// Workers bounds the worker pool (≤0: GOMAXPROCS). The result is
	// byte-identical for every worker count: trials land in indexed slots.
	Workers int
	// StopAtPartition ends each trial at its first partition (the fast
	// MTTF path — curves past the partition are then meaningless and the
	// MeanCurve aggregate is skipped).
	StopAtPartition bool
	// SampleEverySec and Thresholds are passed through to every replay.
	SampleEverySec float64
	Thresholds     []float64
	// Level is the confidence level of the aggregated estimates
	// (default 0.95).
	Level float64
}

// MeanSample is one point of the across-trials mean survivability curve.
type MeanSample struct {
	TimeSec       float64
	ReachableFrac float64
	LargestFrac   float64
}

// Stats aggregates a trial batch.
type Stats struct {
	// Trials holds every per-trial Result, in trial order.
	Trials []*Result
	// MTTF estimates the mean time to first partition over the partitioned
	// trials; trials that never partitioned inside the horizon are counted
	// as Censored.
	MTTF Estimate
	// Below estimates, per TrialConfig.Thresholds entry, the mean first
	// time reachability dropped below the threshold.
	Below []Estimate
	// MeanCurve is the pointwise mean survivability curve (empty when
	// StopAtPartition cut trials short — partial curves do not average).
	MeanCurve []MeanSample
}

// RunTrials runs cfg.Trials independent seeded lifetime replays over a
// worker pool and aggregates them. Determinism: trial i draws its schedule
// from seed cfg.Seed+i regardless of scheduling order, and every aggregate
// folds in trial order, so the Stats are identical for any Workers value
// and GOMAXPROCS.
func RunTrials(net *topology.Network, cfg TrialConfig) (*Stats, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("surv: need at least 1 trial, got %d", cfg.Trials)
	}
	level := cfg.Level
	if level == 0 {
		level = 0.95
	}
	if _, err := tCritical(1, level); err != nil {
		return nil, err
	}
	if err := validateTrialClasses(cfg); err != nil {
		return nil, err
	}

	results := make([]*Result, cfg.Trials)
	errs := make([]error, cfg.Trials)
	workers := graph.Workers(cfg.Workers, cfg.Trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for p := 0; p < workers; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Trials {
					return
				}
				results[i], errs[i] = runTrial(net, cfg, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	st := &Stats{Trials: results}
	var ttf []float64
	censored := 0
	for _, r := range results {
		if r.Partitioned {
			ttf = append(ttf, r.FirstPartitionSec)
		} else {
			censored++
		}
	}
	var err error
	if st.MTTF, err = EstimateMean(ttf, censored, level); err != nil {
		return nil, err
	}
	for j := range cfg.Thresholds {
		var times []float64
		miss := 0
		for _, r := range results {
			if t := r.Below[j].TimeSec; math.IsInf(t, 1) {
				miss++
			} else {
				times = append(times, t)
			}
		}
		est, err := EstimateMean(times, miss, level)
		if err != nil {
			return nil, err
		}
		st.Below = append(st.Below, est)
	}
	if !cfg.StopAtPartition {
		st.MeanCurve = meanCurve(results)
	}
	return st, nil
}

// runTrial draws trial i's schedule and replays it.
func runTrial(net *topology.Network, cfg TrialConfig, i int) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
	var plan *failure.FaultPlan
	var err error
	if cfg.Churn {
		plan, err = failure.Schedule(net, failure.ScheduleConfig{
			HorizonSec: cfg.HorizonSec,
			Classes:    cfg.Classes,
		}, rng)
	} else {
		plan, err = failure.Wearout(net, cfg.Classes, cfg.HorizonSec, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("surv: trial %d: %w", i, err)
	}
	return Lifetime(net, plan, Config{
		HorizonSec:      cfg.HorizonSec,
		SampleEverySec:  cfg.SampleEverySec,
		Thresholds:      cfg.Thresholds,
		StopAtPartition: cfg.StopAtPartition,
	})
}

// validateTrialClasses rejects invalid rates up front (with Churn, repair
// rates are required too) so a bad config fails before spawning workers.
func validateTrialClasses(cfg TrialConfig) error {
	probe := failure.ScheduleConfig{HorizonSec: cfg.HorizonSec, Classes: cfg.Classes}
	if cfg.Churn {
		return probe.Validate()
	}
	// Wear-out ignores MTTR: validate with it patched to a legal value.
	patched := make([]failure.ClassRate, len(cfg.Classes))
	copy(patched, cfg.Classes)
	for i := range patched {
		patched[i].MTTRSec = 1
	}
	probe.Classes = patched
	return probe.Validate()
}

// meanCurve averages full-horizon curves pointwise. All trials share the
// sample grid (same horizon and interval), so folding in trial order is a
// plain per-index mean.
func meanCurve(results []*Result) []MeanSample {
	if len(results) == 0 {
		return nil
	}
	n := len(results[0].Curve)
	for _, r := range results {
		if len(r.Curve) != n {
			return nil // grids diverged (should not happen on full runs)
		}
	}
	out := make([]MeanSample, n)
	for i := range out {
		out[i].TimeSec = results[0].Curve[i].TimeSec
		for _, r := range results {
			out[i].ReachableFrac += r.Curve[i].ReachableFrac
			out[i].LargestFrac += r.Curve[i].LargestFrac
		}
		out[i].ReachableFrac /= float64(len(results))
		out[i].LargestFrac /= float64(len(results))
	}
	return out
}
