package surv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topology"
)

func abcccNet(t testing.TB) *topology.Network {
	t.Helper()
	return core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
}

// bridgeNet is the minimal partitionable network: two servers joined by one
// cable. Its time-to-first-partition equals the cable's lifetime exactly,
// which makes it the closed-form oracle for the MTTF estimator tests.
func bridgeNet() *topology.Network {
	net := topology.NewNetwork("bridge")
	a := net.AddServer("s0")
	b := net.AddServer("s1")
	if err := net.Connect(a, b); err != nil {
		panic(err)
	}
	return net
}

// TestLifetimeMatchesBruteReplay cross-checks the incremental replay against
// a from-scratch recount at every curve sample: replaying the same plan into
// a plain view and recomputing reachable pairs by BFS must agree with the
// curve, and the recorded first partition must be the first event after
// which the alive servers span more than one component.
func TestLifetimeMatchesBruteReplay(t *testing.T) {
	net := abcccNet(t)
	rng := rand.New(rand.NewSource(11))
	plan, err := failure.Schedule(net, failure.ScheduleConfig{
		HorizonSec: 40,
		Classes: []failure.ClassRate{
			{Kind: failure.Switches, MTBFSec: 30, MTTRSec: 6},
			{Kind: failure.Links, MTBFSec: 120, MTTRSec: 3},
		},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lifetime(net, plan, Config{HorizonSec: 40, SampleEverySec: 2, Thresholds: []float64{0.99, 0.5}})
	if err != nil {
		t.Fatal(err)
	}

	g := net.Graph()
	servers := net.Servers()
	total := int64(len(servers))
	totalPairs := float64(total*(total-1)) / 2
	brutePairsAt := func(tSec float64, before bool) (float64, int) {
		view := graph.NewView(g)
		for _, e := range plan.Events {
			if e.TimeSec > tSec || (before && e.TimeSec == tSec) {
				break
			}
			e.Apply(view)
		}
		var pairs int64
		comps := 0
		seen := make([]bool, g.NumNodes())
		scratch := graph.NewBFSScratch(g.NumNodes())
		for _, s := range servers {
			if seen[s] || !view.NodeUp(s) {
				continue
			}
			res := g.BFSScratched(s, view, scratch)
			var w int64
			for _, s2 := range servers {
				if view.NodeUp(s2) && res.Dist[s2] != graph.Unreachable {
					seen[s2] = true
					w++
				}
			}
			pairs += w * (w - 1) / 2
			comps++
		}
		return float64(pairs) / totalPairs, comps
	}

	for _, s := range res.Curve {
		// Grid samples precede same-time events; the final sample (at the
		// stop time) is post-event.
		before := s.TimeSec != res.StoppedSec
		frac, comps := brutePairsAt(s.TimeSec, before)
		if math.Abs(frac-s.ReachableFrac) > 1e-12 {
			t.Fatalf("t=%v: curve frac %v, brute %v", s.TimeSec, s.ReachableFrac, frac)
		}
		if comps != s.ServerComps {
			t.Fatalf("t=%v: curve comps %d, brute %d", s.TimeSec, s.ServerComps, comps)
		}
	}

	// First partition: replay manually and find it.
	wantFirst := math.Inf(1)
	{
		view := graph.NewView(g)
		for _, e := range plan.Events {
			if e.TimeSec >= 40 {
				break
			}
			e.Apply(view)
			if _, comps := func() (float64, int) { return brutePairsAt(e.TimeSec, false) }(); comps > 1 {
				wantFirst = e.TimeSec
				break
			}
		}
	}
	if res.FirstPartitionSec != wantFirst {
		t.Fatalf("FirstPartitionSec = %v, brute %v", res.FirstPartitionSec, wantFirst)
	}
	if res.Partitioned != !math.IsInf(wantFirst, 1) {
		t.Fatalf("Partitioned = %v inconsistent with first partition %v", res.Partitioned, wantFirst)
	}

	// StopAtPartition must find the same first partition, then stop.
	stopped, err := Lifetime(net, plan, Config{HorizonSec: 40, StopAtPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.FirstPartitionSec != res.FirstPartitionSec {
		t.Fatalf("StopAtPartition first partition %v, full replay %v", stopped.FirstPartitionSec, res.FirstPartitionSec)
	}
	if stopped.Partitioned && stopped.StoppedSec != stopped.FirstPartitionSec {
		t.Fatalf("stopped at %v, partition at %v", stopped.StoppedSec, stopped.FirstPartitionSec)
	}
}

func TestLifetimeThresholdsAndSeries(t *testing.T) {
	net := bridgeNet()
	plan := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 3, Kind: failure.Links, Index: 0},
	}}
	ser := obs.NewSeries(int64(1e9)) // 1 s windows
	res, err := Lifetime(net, plan, Config{
		HorizonSec:     8,
		SampleEverySec: 1,
		Thresholds:     []float64{1, 0.5},
		Series:         ser,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partitioned || res.FirstPartitionSec != 3 {
		t.Fatalf("partition at %v, want 3", res.FirstPartitionSec)
	}
	// One pair total: the cut drops reachability 1 -> 0, crossing both
	// thresholds at t=3.
	for i, th := range res.Below {
		if th.TimeSec != 3 {
			t.Fatalf("threshold %d (%v) crossed at %v, want 3", i, th.Frac, th.TimeSec)
		}
	}
	if res.MinReachableFrac != 0 || res.FinalReachableFrac != 0 {
		t.Fatalf("min/final frac = %v/%v, want 0/0", res.MinReachableFrac, res.FinalReachableFrac)
	}
	if res.FinalLargestFrac != 0.5 {
		t.Fatalf("final largest frac %v, want 0.5", res.FinalLargestFrac)
	}

	// Series: the reachable track is a 1-per-window gauge that steps from
	// 1e6 ppm to 0 after t=3; the event track has exactly one update.
	pts := ser.Points()
	if len(pts) == 0 {
		t.Fatal("no series points recorded")
	}
	events := 0
	for _, pt := range pts {
		switch pt.Track {
		case TrackEvents:
			events += int(pt.Count)
		case TrackReachable:
			if pt.Count != 1 || pt.Sum != pt.Max {
				t.Fatalf("reachable window %d is not a gauge point: %+v", pt.Window, pt)
			}
			// Grid samples precede same-time events, so the t=3 sample
			// (window 3) still sees the link up.
			wantPpm := int64(0)
			if pt.T0Ns <= 3e9 {
				wantPpm = 1e6
			}
			if pt.Sum != wantPpm {
				t.Fatalf("reachable at window %d = %d ppm, want %d", pt.Window, pt.Sum, wantPpm)
			}
		}
	}
	if events != 1 {
		t.Fatalf("event track counted %d events, want 1", events)
	}
}

func TestLifetimeCapacityRetention(t *testing.T) {
	net := abcccNet(t)
	// Kill a third of the links at t=2, no repairs.
	plan, err := failure.Downs(net, failure.Links, 0.33, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lifetime(net, plan, Config{
		HorizonSec:       8,
		CapacityPairs:    16,
		CapacityEverySec: 4,
		CapacitySeed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacity) == 0 {
		t.Fatal("no capacity checkpoints")
	}
	if res.Capacity[0].TimeSec != 0 || res.Capacity[0].Retention != 1 {
		t.Fatalf("pristine checkpoint = %+v, want retention 1 at t=0", res.Capacity[0])
	}
	last := res.Capacity[len(res.Capacity)-1]
	if last.Retention >= 1 {
		t.Fatalf("a third of the links down retained %v capacity", last.Retention)
	}
	if last.Retention <= 0 {
		t.Fatalf("retention %v collapsed to zero on a multipath structure", last.Retention)
	}
}

func TestLifetimeRejectsBadConfig(t *testing.T) {
	net := abcccNet(t)
	empty := &failure.FaultPlan{}
	bad := []Config{
		{HorizonSec: 0},
		{HorizonSec: -1},
		{HorizonSec: math.Inf(1)},
		{HorizonSec: 1, Thresholds: []float64{0}},
		{HorizonSec: 1, Thresholds: []float64{1.5}},
		{HorizonSec: 1, SampleEverySec: -2},
		{HorizonSec: 1, CapacityPairs: -1},
		{HorizonSec: 1e12, Series: obs.NewSeries(0)}, // ns overflow
	}
	for i, cfg := range bad {
		if _, err := Lifetime(net, empty, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	// Unsorted plans are rejected, not silently misreplayed.
	unsorted := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 5, Kind: failure.Links, Index: 0},
		{TimeSec: 1, Kind: failure.Links, Index: 1},
	}}
	if _, err := Lifetime(net, unsorted, Config{HorizonSec: 10}); err == nil {
		t.Error("unsorted plan accepted")
	}
}
