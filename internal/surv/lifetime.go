// Package surv is the survivability suite: long-horizon lifetime simulation
// of data-center networks under component churn and wear-out, at
// connectivity level rather than packet level.
//
// A lifetime replay feeds a seeded failure.FaultPlan — Poisson churn from
// failure.Schedule or a no-repair wear-out schedule from failure.Wearout —
// through graph.DynConn, which re-evaluates the survivability metrics
// incrementally at each fault or repair event: the fraction of reachable
// server pairs, the largest server component, the partition predicate, and
// (sampled) max-flow capacity retention. Because an event costs roughly a
// small neighborhood BFS instead of a full traversal, a multi-year horizon
// over a 100k-server network replays in seconds, which is what makes
// MTTF-to-first-partition estimation by repeated seeded trials (see
// RunTrials) tractable — per Couto et al., the discriminating robustness
// questions for DCN topologies live at this timescale, not at packet RTTs.
package surv

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Series track names written by Lifetime. Fractions are scaled to parts per
// million so they survive the integer series cells; each track receives
// exactly one update per sample instant, so a window's sum, max, and
// count==1 all read back as the gauge value.
const (
	// TrackReachable is the reachable server-pair fraction, in ppm.
	TrackReachable = "surv_reachable_ppm"
	// TrackLargest is the largest-component server fraction, in ppm.
	TrackLargest = "surv_largest_ppm"
	// TrackAliveServers is the alive-server count.
	TrackAliveServers = "surv_alive_servers"
	// TrackComponents is the number of components containing servers.
	TrackComponents = "surv_server_components"
	// TrackEvents counts fault/repair events (one update per event, so a
	// window's count and sum are the events landing in it).
	TrackEvents = "surv_events"
)

// Config parameterizes one lifetime replay.
type Config struct {
	// HorizonSec is the simulated horizon. Required positive; bounded by
	// ~292 simulated years (the nanosecond int64 range) when Series is set.
	HorizonSec float64
	// SampleEverySec is the survivability-curve sampling interval.
	// Defaults to HorizonSec/64.
	SampleEverySec float64
	// Thresholds lists reachable-pair fractions in (0, 1] whose first
	// crossing times (reachability dropping strictly below) are recorded.
	Thresholds []float64
	// StopAtPartition ends the replay at the first event after which the
	// alive servers no longer form a single component. This is the fast
	// path for MTTF-to-first-partition estimation: on a well-connected
	// network almost every event then costs only a neighborhood probe, and
	// the one splitting event pays for a single full traversal.
	StopAtPartition bool
	// Series, when non-nil, receives the surv_* tracks at every curve
	// sample (see the Track* constants).
	Series *obs.Series
	// CapacityPairs, when positive, samples that many random server pairs
	// and measures their summed vertex-disjoint-path capacity (relative to
	// the pristine network) at every capacity checkpoint. Expensive: each
	// checkpoint runs a max-flow per pair; meant for analysis-scale
	// networks, not the 100k-server fast path.
	CapacityPairs int
	// CapacityEverySec is the capacity checkpoint interval; defaults to
	// HorizonSec/8.
	CapacityEverySec float64
	// CapacitySeed seeds the capacity pair sample.
	CapacitySeed int64
}

func (cfg Config) validate() error {
	if !(cfg.HorizonSec > 0) || math.IsInf(cfg.HorizonSec, 1) {
		return fmt.Errorf("surv: horizon %v must be positive and finite", cfg.HorizonSec)
	}
	if cfg.Series != nil && cfg.HorizonSec > float64(math.MaxInt64)/1e9 {
		return fmt.Errorf("surv: horizon %v s overflows the nanosecond series axis", cfg.HorizonSec)
	}
	if cfg.SampleEverySec < 0 {
		return fmt.Errorf("surv: negative sample interval %v", cfg.SampleEverySec)
	}
	for _, th := range cfg.Thresholds {
		if !(th > 0 && th <= 1) {
			return fmt.Errorf("surv: threshold %v outside (0, 1]", th)
		}
	}
	if cfg.CapacityPairs < 0 {
		return fmt.Errorf("surv: negative capacity pair count %d", cfg.CapacityPairs)
	}
	return nil
}

// Sample is one point of the survivability curve. Samples are taken on the
// SampleEverySec grid plus one final point at the replay's stop time; values
// describe the state at that instant (grid samples precede any event at the
// same timestamp).
type Sample struct {
	TimeSec       float64
	ReachableFrac float64 // reachable server pairs / pristine C(S,2)
	LargestFrac   float64 // largest component's servers / total servers
	AliveServers  int64
	ServerComps   int // components containing at least one server
	Events        int // cumulative events applied
}

// ThresholdCross records when reachability first dropped strictly below
// Frac (+Inf if it never did).
type ThresholdCross struct {
	Frac    float64
	TimeSec float64
}

// CapacitySample is one capacity-retention checkpoint: the sampled pairs'
// summed vertex-disjoint-path count as a fraction of its pristine value.
type CapacitySample struct {
	TimeSec   float64
	Retention float64
}

// Result is everything one lifetime replay produced.
type Result struct {
	HorizonSec float64
	// StoppedSec is where the replay ended: the horizon, or the first
	// partition when Config.StopAtPartition is set.
	StoppedSec float64
	// Events is the number of fault/repair events applied.
	Events int
	// Partitioned reports whether the alive servers ever split into more
	// than one component; FirstPartitionSec is when (+Inf if never).
	Partitioned       bool
	FirstPartitionSec float64
	// MinReachableFrac is the lowest reachable-pair fraction seen;
	// FinalReachableFrac and FinalLargestFrac describe the end state.
	MinReachableFrac   float64
	FinalReachableFrac float64
	FinalLargestFrac   float64
	// Below holds the first crossing time per configured threshold, in
	// Config.Thresholds order.
	Below []ThresholdCross
	// Curve is the survivability-vs-time curve.
	Curve []Sample
	// Capacity holds the capacity-retention checkpoints (nil unless
	// Config.CapacityPairs was positive).
	Capacity []CapacitySample
}

// applyEvent transitions one fault-plan event in the tracker.
func applyEvent(d *graph.DynConn, e failure.FaultEvent) {
	if e.Kind == failure.Links {
		if e.Up {
			d.RepairEdge(e.Index)
		} else {
			d.FailEdge(e.Index)
		}
		return
	}
	if e.Up {
		d.RepairNode(e.Index)
	} else {
		d.FailNode(e.Index)
	}
}

// Lifetime replays plan against net at connectivity level and returns the
// survivability record. The plan must be time-sorted (as every generator in
// the failure package returns it) and valid for net; events at or past the
// horizon are ignored. The replay is deterministic: one (net, plan, cfg)
// triple always produces the same Result.
func Lifetime(net *topology.Network, plan *failure.FaultPlan, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(net); err != nil {
		return nil, err
	}
	g := net.Graph()
	totalServers := int64(net.NumServers())
	if totalServers < 2 {
		return nil, fmt.Errorf("surv: need at least 2 servers, have %d", totalServers)
	}
	weight := make([]int64, g.NumNodes())
	for _, s := range net.Servers() {
		weight[s] = 1
	}
	d := graph.NewDynConn(g, weight)
	totalPairs := float64(totalServers) * float64(totalServers-1) / 2

	res := &Result{
		HorizonSec:        cfg.HorizonSec,
		FirstPartitionSec: math.Inf(1),
		MinReachableFrac:  1,
	}
	for _, th := range cfg.Thresholds {
		res.Below = append(res.Below, ThresholdCross{Frac: th, TimeSec: math.Inf(1)})
	}
	every := cfg.SampleEverySec
	if every <= 0 {
		every = cfg.HorizonSec / 64
	}

	reach := func() float64 { return float64(d.Pairs()) / totalPairs }
	record := func(t float64) {
		f := reach()
		lf := float64(d.LargestWeight()) / float64(totalServers)
		res.Curve = append(res.Curve, Sample{
			TimeSec:       t,
			ReachableFrac: f,
			LargestFrac:   lf,
			AliveServers:  d.AliveWeight(),
			ServerComps:   d.WeightedComponents(),
			Events:        res.Events,
		})
		if cfg.Series != nil {
			tNs := int64(math.Round(t * 1e9))
			cfg.Series.Track(TrackReachable).Add(tNs, int64(math.Round(f*1e6)))
			cfg.Series.Track(TrackLargest).Add(tNs, int64(math.Round(lf*1e6)))
			cfg.Series.Track(TrackAliveServers).Add(tNs, d.AliveWeight())
			cfg.Series.Track(TrackComponents).Add(tNs, int64(d.WeightedComponents()))
		}
	}

	// Capacity checkpoints: a fixed random pair sample scored by view-aware
	// vertex-disjoint-path max-flow against its pristine value.
	capEvery := cfg.CapacityEverySec
	if capEvery <= 0 {
		capEvery = cfg.HorizonSec / 8
	}
	var capPairs [][2]int
	var capBase int64
	if cfg.CapacityPairs > 0 {
		capPairs = failure.SamplePairs(net, cfg.CapacityPairs, rand.New(rand.NewSource(cfg.CapacitySeed)))
		for _, p := range capPairs {
			capBase += int64(g.VertexDisjointPathsIn(p[0], p[1], nil))
		}
	}
	capRecord := func(t float64) {
		if capPairs == nil || capBase == 0 {
			return
		}
		var sum int64
		for _, p := range capPairs {
			sum += int64(g.VertexDisjointPathsIn(p[0], p[1], d.View()))
		}
		res.Capacity = append(res.Capacity, CapacitySample{TimeSec: t, Retention: float64(sum) / float64(capBase)})
	}

	record(0)
	capRecord(0)
	nextSample := every
	nextCap := capEvery
	stopped := cfg.HorizonSec
	prevT := 0.0
	for _, e := range plan.Events {
		if e.TimeSec < prevT {
			return nil, fmt.Errorf("surv: plan not sorted (event at %v after %v)", e.TimeSec, prevT)
		}
		prevT = e.TimeSec
		if e.TimeSec >= cfg.HorizonSec {
			break
		}
		for nextSample <= e.TimeSec {
			record(nextSample)
			nextSample += every
		}
		for capPairs != nil && nextCap <= e.TimeSec {
			capRecord(nextCap)
			nextCap += capEvery
		}
		applyEvent(d, e)
		res.Events++
		if cfg.Series != nil {
			cfg.Series.Track(TrackEvents).Add(int64(math.Round(e.TimeSec*1e9)), 1)
		}
		f := reach()
		if f < res.MinReachableFrac {
			res.MinReachableFrac = f
		}
		for i := range res.Below {
			if math.IsInf(res.Below[i].TimeSec, 1) && f < res.Below[i].Frac {
				res.Below[i].TimeSec = e.TimeSec
			}
		}
		if !res.Partitioned && d.WeightedComponents() > 1 {
			res.Partitioned = true
			res.FirstPartitionSec = e.TimeSec
			if cfg.StopAtPartition {
				stopped = e.TimeSec
				break
			}
		}
	}
	for nextSample < stopped {
		record(nextSample)
		nextSample += every
	}
	record(stopped)
	for capPairs != nil && nextCap < stopped {
		capRecord(nextCap)
		nextCap += capEvery
	}
	capRecord(stopped)
	res.StoppedSec = stopped
	res.FinalReachableFrac = reach()
	res.FinalLargestFrac = float64(d.LargestWeight()) / float64(totalServers)
	return res, nil
}
