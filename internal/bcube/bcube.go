// Package bcube implements BCube (Guo et al., SIGCOMM 2009), the
// server-centric structure that ABCCC's expansion story is measured against.
//
// BCube(n,k) has n^(k+1) servers, each with k+1 NIC ports, addressed by
// (k+1)-digit base-n vectors. For every level l and every vector-minus-digit
// cvec there is an n-port switch joining the n servers that differ only in
// digit l. BCube's weakness, which ABCCC fixes, is expansion: growing the
// order requires adding a NIC port to every existing server.
package bcube

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/topology"
)

// ErrNoRoute is returned when fault-tolerant routing gives up.
var ErrNoRoute = errors.New("bcube: fault-tolerant routing found no route")

// Config selects a BCube instance: n-port switches, order k, servers with
// k+1 NIC ports.
type Config struct {
	N int
	K int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("bcube: switch radix N = %d, need >= 2", c.N)
	}
	if c.K < 0 {
		return fmt.Errorf("bcube: order K = %d, need >= 0", c.K)
	}
	servers := 1
	for i := 0; i <= c.K; i++ {
		servers *= c.N
		if servers > 4<<20 {
			return fmt.Errorf("bcube: instance too large (N=%d K=%d)", c.N, c.K)
		}
	}
	return nil
}

// BCube is a built instance; immutable after Build.
type BCube struct {
	cfg     Config
	net     *topology.Network
	servers []int   // servers[vec]
	levelSw [][]int // levelSw[l][cvec]
	vecs    int
}

var (
	_ topology.Topology    = (*BCube)(nil)
	_ topology.FaultRouter = (*BCube)(nil)
)

// Build constructs BCube(n,k).
func Build(cfg Config) (*BCube, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	vecs := 1
	for i := 0; i <= cfg.K; i++ {
		vecs *= cfg.N
	}
	t := &BCube{
		cfg:  cfg,
		net:  topology.NewNetwork(fmt.Sprintf("BCube(%d,%d)", cfg.N, cfg.K)),
		vecs: vecs,
	}
	t.servers = make([]int, vecs)
	for vec := 0; vec < vecs; vec++ {
		t.servers[vec] = t.net.AddServer("S" + strconv.Itoa(vec))
	}
	digits := cfg.K + 1
	t.levelSw = make([][]int, digits)
	for l := 0; l < digits; l++ {
		t.levelSw[l] = make([]int, vecs/cfg.N)
		for cvec := range t.levelSw[l] {
			sw := t.net.AddSwitch("W" + strconv.Itoa(l) + "/" + strconv.Itoa(cvec))
			t.levelSw[l][cvec] = sw
			for d := 0; d < cfg.N; d++ {
				if err := t.net.Connect(t.servers[t.expand(cvec, l, d)], sw); err != nil {
					return nil, fmt.Errorf("bcube: wire level %d: %w", l, err)
				}
			}
		}
	}
	return t, nil
}

// MustBuild is Build for known-good configs.
func MustBuild(cfg Config) *BCube {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Network returns the built network.
func (t *BCube) Network() *topology.Network { return t.net }

// Config returns the instance parameters.
func (t *BCube) Config() Config { return t.cfg }

// ServerAt returns the node index of the server with address vector vec.
func (t *BCube) ServerAt(vec int) int { return t.servers[vec] }

// NumVectors returns the number of servers, n^(k+1).
func (t *BCube) NumVectors() int { return t.vecs }

// Properties returns the analytic comparison-table row; see
// Config.Properties.
func (t *BCube) Properties() topology.Properties { return t.cfg.Properties() }

// Properties returns the analytic comparison-table row without building the
// instance (BCube paper, section 2): diameter k+1 hops, bisection N/2 links.
func (c Config) Properties() topology.Properties {
	digits := c.K + 1
	vecs := 1
	for i := 0; i <= c.K; i++ {
		vecs *= c.N
	}
	return topology.Properties{
		Name:           fmt.Sprintf("BCube(%d,%d)", c.N, c.K),
		Servers:        vecs,
		Switches:       digits * (vecs / c.N),
		Links:          digits * vecs,
		ServerPorts:    digits,
		SwitchPorts:    c.N,
		Diameter:       digits,
		DiameterLinks:  2 * digits,
		BisectionLinks: (c.N / 2) * (vecs / c.N),
	}
}

// Route implements BCubeRouting: correct differing digits in descending
// level order (the paper's canonical order), one switch hop per digit.
func (t *BCube) Route(src, dst int) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	sVec := t.vecOf(src)
	dVec := t.vecOf(dst)
	cur := sVec
	path := topology.Path{src}
	for l := t.cfg.K; l >= 0; l-- {
		if t.digit(cur, l) == t.digit(dVec, l) {
			continue
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, t.digit(dVec, l))
		path = append(path, t.servers[cur])
	}
	return path, nil
}

// RouteAvoiding is a simplified BSR-style adaptive routing: greedily correct
// any alive differing digit; when stuck, detour via an alive mis-correction,
// within a bounded hop budget.
func (t *BCube) RouteAvoiding(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	if !view.NodeUp(src) || !view.NodeUp(dst) {
		return nil, fmt.Errorf("%w: endpoint failed", ErrNoRoute)
	}
	dVec := t.vecOf(dst)
	cur := t.vecOf(src)
	path := topology.Path{src}
	visited := map[int]bool{src: true}

	move := func(l, v int) bool {
		sw := t.levelSw[l][t.contract(cur, l)]
		next := t.setDigit(cur, l, v)
		nextNode := t.servers[next]
		if !view.NodeUp(sw) || visited[sw] || !view.NodeUp(nextNode) || visited[nextNode] {
			return false
		}
		curNode := t.servers[cur]
		g := t.net.Graph()
		if !view.EdgeUp(g.EdgeBetween(curNode, sw)) || !view.EdgeUp(g.EdgeBetween(sw, nextNode)) {
			return false
		}
		visited[sw], visited[nextNode] = true, true
		path = append(path, sw, nextNode)
		cur = next
		return true
	}

	budget := 4 * (t.cfg.K + 2)
	for hop := 0; hop < budget; hop++ {
		if cur == dVec {
			return path, nil
		}
		progressed := false
		for l := t.cfg.K; l >= 0 && !progressed; l-- {
			if t.digit(cur, l) != t.digit(dVec, l) {
				progressed = move(l, t.digit(dVec, l))
			}
		}
		if progressed {
			continue
		}
		for l := t.cfg.K; l >= 0 && !progressed; l-- {
			for v := 0; v < t.cfg.N && !progressed; v++ {
				if v != t.digit(cur, l) {
					progressed = move(l, v)
				}
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: stuck after %d hops", ErrNoRoute, hop)
		}
	}
	return nil, fmt.Errorf("%w: hop budget exhausted", ErrNoRoute)
}

// Expand builds BCube(n, k+1) and reports the expansion bill. All existing
// cables stay, but every existing server needs one more NIC port — the cost
// ABCCC was designed to eliminate.
func Expand(old *BCube) (*BCube, topology.ExpansionReport, error) {
	bigger, err := Build(Config{N: old.cfg.N, K: old.cfg.K + 1})
	if err != nil {
		return nil, topology.ExpansionReport{}, fmt.Errorf("bcube: expand: %w", err)
	}
	report := topology.ExpansionReport{
		Before:        old.net.Name(),
		After:         bigger.net.Name(),
		ServersBefore: old.net.NumServers(),
		ServersAfter:  bigger.net.NumServers(),
		NewServers:    bigger.net.NumServers() - old.net.NumServers(),
		NewSwitches:   bigger.net.NumSwitches() - old.net.NumSwitches(),
		NewLinks:      bigger.net.NumLinks() - old.net.NumLinks(),
	}
	// Old vector v embeds as new vector v (inserted high digit 0); level
	// switches keep their contracted index.
	mapped := make([]int, old.net.Graph().NumNodes())
	for vec := 0; vec < old.vecs; vec++ {
		mapped[old.servers[vec]] = bigger.servers[vec]
	}
	for l := range old.levelSw {
		for cvec, id := range old.levelSw[l] {
			mapped[id] = bigger.levelSw[l][cvec]
		}
	}
	oldG := old.net.Graph()
	for e := 0; e < oldG.NumEdges(); e++ {
		edge := oldG.Edge(e)
		if bigger.net.Graph().EdgeBetween(mapped[edge.U], mapped[edge.V]) != -1 {
			report.PreservedLinks++
		} else {
			report.RewiredLinks++
		}
	}
	// Every old server's hardware had k+1 ports; its new role needs k+2.
	oldPorts := old.cfg.K + 1
	for vec := 0; vec < old.vecs; vec++ {
		if bigger.net.Graph().Degree(mapped[old.servers[vec]]) > oldPorts {
			report.UpgradedServers++
		}
	}
	return bigger, report, nil
}

func (t *BCube) vecOf(node int) int { return node } // servers are created first, ids 0..vecs-1

func (t *BCube) digit(vec, l int) int {
	for i := 0; i < l; i++ {
		vec /= t.cfg.N
	}
	return vec % t.cfg.N
}

func (t *BCube) setDigit(vec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return vec + (d-(vec/pow)%t.cfg.N)*pow
}

func (t *BCube) contract(vec, l int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return (vec/(pow*t.cfg.N))*pow + vec%pow
}

func (t *BCube) expand(cvec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return (cvec/pow)*pow*t.cfg.N + d*pow + cvec%pow
}
