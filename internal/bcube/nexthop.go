package bcube

import (
	"fmt"
)

// NextHop makes the hop-by-hop forwarding decision for a packet at node cur
// heading for server dst, using only local state: a server corrects its
// highest differing digit (BCubeRouting's order) by handing the packet to
// that level's switch; a switch delivers to the member whose digit matches
// the destination. It satisfies the emulator's Forwarder interface.
func (t *BCube) NextHop(cur, dst int) (int, error) {
	if !t.net.IsServer(dst) {
		return 0, fmt.Errorf("bcube: next hop destination %d is not a server", dst)
	}
	if cur == dst {
		return dst, nil
	}
	dVec := t.vecOf(dst)
	if t.net.IsServer(cur) {
		cVec := t.vecOf(cur)
		for l := t.cfg.K; l >= 0; l-- {
			if t.digit(cVec, l) != t.digit(dVec, l) {
				return t.levelSw[l][t.contract(cVec, l)], nil
			}
		}
		return 0, fmt.Errorf("bcube: server %d is not the destination yet matches its address", cur)
	}
	// Switch: recover its level from two member vectors.
	nbrs := t.net.Graph().Neighbors(cur, nil)
	if len(nbrs) < 2 {
		return 0, fmt.Errorf("bcube: switch %d has too few ports", cur)
	}
	v0, v1 := t.vecOf(nbrs[0]), t.vecOf(nbrs[1])
	for l := 0; l <= t.cfg.K; l++ {
		if t.digit(v0, l) != t.digit(v1, l) {
			return t.servers[t.setDigit(v0, l, t.digit(dVec, l))], nil
		}
	}
	return 0, fmt.Errorf("bcube: cannot classify switch %d", cur)
}
