package bcube

import "repro/internal/topology"

var _ topology.Sharder = (*BCube)(nil)

// ShardOf implements topology.Sharder: the partition cuts along the address
// space by level-0 group — the N servers sharing a level-0 switch, BCube's
// tightest locality — so a server always lands with its level-0 switch.
// Every level switch follows its digit-0 attached server's group; contiguous
// group ranges share their high address digits, so low-level traffic stays
// intra-shard and only top-digit hops cross the cut.
func (t *BCube) ShardOf(id, s int) int {
	groups := t.vecs / t.cfg.N
	if id < t.vecs {
		return topology.ContiguousShard(id/t.cfg.N, groups, s)
	}
	lid := id - t.vecs
	l, cvec := lid/groups, lid%groups
	return topology.ContiguousShard(t.expand(cvec, l, 0)/t.cfg.N, groups, s)
}
