package bcube

import "repro/internal/topology"

// ParallelPaths returns BCube's classic k+1 internally vertex-disjoint paths
// (Guo et al., SIGCOMM 2009, BuildPathSet): for each level where the address
// vectors differ, the DCRouting path that corrects that level first and the
// remaining levels in cyclic descending order; for each level where they
// agree, the AltDCRouting detour that first mis-corrects the level to a
// neighbor value and restores it last. Differing levels are listed in
// descending order, so the first candidate is exactly the default Route path.
func (t *BCube) ParallelPaths(src, dst int) []topology.Path {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil || src == dst {
		return nil
	}
	sVec, dVec := t.vecOf(src), t.vecOf(dst)
	var candidates []topology.Path
	add := func(p topology.Path) {
		if p.Validate(t.net, src, dst) == nil {
			candidates = append(candidates, p)
		}
	}
	for l := t.cfg.K; l >= 0; l-- {
		if t.digit(sVec, l) != t.digit(dVec, l) {
			add(t.permutationPath(sVec, dVec, l, -1))
		}
	}
	for l := t.cfg.K; l >= 0; l-- {
		if t.digit(sVec, l) == t.digit(dVec, l) {
			add(t.permutationPath(sVec, dVec, l, (t.digit(sVec, l)+1)%t.cfg.N))
		}
	}
	return topology.DisjointSubset(candidates, src, dst)
}

// permutationPath walks the digit corrections in cyclic descending order
// starting at level start. With alt < 0 it is DCRouting (level start must
// differ, and is corrected first). With alt >= 0 level start agrees between
// the endpoints: the walk first sets it to the scratch value alt, corrects
// the differing levels, and restores it last (AltDCRouting).
func (t *BCube) permutationPath(sVec, dVec, start, alt int) topology.Path {
	digits := t.cfg.K + 1
	cur := sVec
	path := topology.Path{t.servers[cur]}
	step := func(l, v int) {
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, v)
		path = append(path, t.servers[cur])
	}
	if alt >= 0 {
		step(start, alt)
	}
	for d := 0; d < digits; d++ {
		l := ((start-d)%digits + digits) % digits
		if l == start && alt >= 0 {
			continue // restored last, below
		}
		if t.digit(cur, l) != t.digit(dVec, l) {
			step(l, t.digit(dVec, l))
		}
	}
	if alt >= 0 {
		step(start, t.digit(dVec, start))
	}
	return path
}

var _ topology.MultipathRouter = (*BCube)(nil)
