package bcube

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func configs() []Config {
	return []Config{
		{N: 2, K: 0},
		{N: 2, K: 2},
		{N: 3, K: 1},
		{N: 4, K: 1},
		{N: 4, K: 2},
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		cfg     Config
		wantErr bool
	}{
		{cfg: Config{N: 4, K: 2}},
		{cfg: Config{N: 1, K: 0}, wantErr: true},
		{cfg: Config{N: 4, K: -1}, wantErr: true},
		{cfg: Config{N: 64, K: 5}, wantErr: true},
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("Validate(%+v) = %v, wantErr %v", tt.cfg, err, tt.wantErr)
		}
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		props := tp.Properties()
		net := tp.Network()
		if net.NumServers() != props.Servers || net.NumSwitches() != props.Switches ||
			net.NumLinks() != props.Links {
			t.Errorf("%s: built %d/%d/%d, formula %d/%d/%d", net.Name(),
				net.NumServers(), net.NumSwitches(), net.NumLinks(),
				props.Servers, props.Switches, props.Links)
		}
		if got := net.MaxDegree(topology.Server); got != cfg.K+1 {
			t.Errorf("%s: server degree %d, want %d", net.Name(), got, cfg.K+1)
		}
	}
}

func TestRouteAllPairs(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		d := tp.Properties().Diameter
		for _, src := range net.Servers() {
			for _, dst := range net.Servers() {
				p, err := tp.Route(src, dst)
				if err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if h := p.SwitchHops(net); h > d {
					t.Fatalf("%s: %d hops > diameter %d", net.Name(), h, d)
				}
			}
		}
	}
}

func TestAnalyticDiameterTight(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		worst := 0
		for _, src := range servers {
			ecc, ok := net.Graph().Eccentricity(src, servers, nil)
			if !ok {
				t.Fatalf("%s: disconnected", net.Name())
			}
			if ecc > worst {
				worst = ecc
			}
		}
		if worst/2 != tp.Properties().Diameter {
			t.Errorf("%s: measured diameter %d, analytic %d",
				net.Name(), worst/2, tp.Properties().Diameter)
		}
	}
}

func TestRouteIsShortestPath(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	net := tp.Network()
	for _, src := range net.Servers() {
		bfs := net.Graph().BFS(src, nil)
		for _, dst := range net.Servers() {
			p, err := tp.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if p.Len() != int(bfs.Dist[dst]) {
				t.Errorf("Route(%s,%s) = %d edges, shortest %d",
					net.Label(src), net.Label(dst), p.Len(), bfs.Dist[dst])
			}
		}
	}
}

func TestRouteErrors(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1})
	sw := tp.Network().Switches()[0]
	srv := tp.Network().Server(0)
	if _, err := tp.Route(sw, srv); err == nil {
		t.Error("Route(switch, server) succeeded")
	}
	if _, err := Build(Config{N: 0, K: 0}); err == nil {
		t.Error("Build(invalid) succeeded")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustBuild(Config{N: 0})
}

func TestRouteAvoidingAroundSwitchFailure(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 1})
	net := tp.Network()
	src, dst := tp.ServerAt(0), tp.ServerAt(15)
	direct, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	view.FailNode(direct[1]) // first switch on the direct route
	p, err := tp.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding: %v", err)
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Fatal(err)
	}
	if !p.Alive(net, view) {
		t.Error("route uses failed switch")
	}
}

func TestRouteAvoidingEndpointDown(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1})
	net := tp.Network()
	view := graph.NewView(net.Graph())
	view.FailNode(net.Server(3))
	if _, err := tp.RouteAvoiding(net.Server(0), net.Server(3), view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteAvoidingMostlySucceedsUnderFailures(t *testing.T) {
	tp := MustBuild(Config{N: 4, K: 2})
	net := tp.Network()
	rng := rand.New(rand.NewSource(2))
	view := graph.NewView(net.Graph())
	for _, sw := range net.Switches() {
		if rng.Float64() < 0.05 {
			view.FailNode(sw)
		}
	}
	servers := net.Servers()
	connected, found := 0, 0
	for trial := 0; trial < 200; trial++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst || net.Graph().ShortestPath(src, dst, view) == nil {
			continue
		}
		connected++
		if p, err := tp.RouteAvoiding(src, dst, view); err == nil {
			if !p.Alive(net, view) {
				t.Fatal("route uses failed components")
			}
			found++
		}
	}
	if connected == 0 {
		t.Fatal("no connected pairs")
	}
	if ratio := float64(found) / float64(connected); ratio < 0.9 {
		t.Errorf("fault routing success %.2f, want >= 0.9", ratio)
	}
}

func TestExpandRequiresNICUpgradeEverywhere(t *testing.T) {
	old := MustBuild(Config{N: 4, K: 1})
	bigger, report, err := Expand(old)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Config().K != 2 {
		t.Errorf("expanded K = %d", bigger.Config().K)
	}
	if report.RewiredLinks != 0 {
		t.Errorf("rewired = %d, want 0 (cables stay, NICs change)", report.RewiredLinks)
	}
	if report.UpgradedServers != old.Network().NumServers() {
		t.Errorf("upgraded %d servers, want all %d — BCube's expansion pain",
			report.UpgradedServers, old.Network().NumServers())
	}
	if report.TouchedFraction() == 0 {
		t.Error("touched fraction should be positive for BCube")
	}
}

func TestExpandInvalid(t *testing.T) {
	// Growing past the size guard must fail: 50^4 servers is over the cap.
	big := MustBuild(Config{N: 50, K: 2})
	if _, _, err := Expand(big); err == nil {
		t.Error("oversized expansion succeeded")
	}
}

func TestNextHopWalksAllPairs(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	net := tp.Network()
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			cur := src
			steps := 0
			for cur != dst {
				next, err := tp.NextHop(cur, dst)
				if err != nil {
					t.Fatalf("NextHop(%s,%s): %v", net.Label(cur), net.Label(dst), err)
				}
				if net.Graph().EdgeBetween(cur, next) == -1 {
					t.Fatalf("NextHop returned a non-neighbor")
				}
				cur = next
				if steps++; steps > 4*(tp.Config().K+2) {
					t.Fatalf("walk did not terminate (%s -> %s)", net.Label(src), net.Label(dst))
				}
			}
		}
	}
}

func TestNextHopErrors(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 0})
	if _, err := tp.NextHop(tp.ServerAt(0), tp.Network().Switches()[0]); err == nil {
		t.Error("switch destination accepted")
	}
	if next, err := tp.NextHop(tp.ServerAt(1), tp.ServerAt(1)); err != nil || next != tp.ServerAt(1) {
		t.Errorf("self hop = %d, %v", next, err)
	}
}
