// Package bccc is an independent implementation of BCCC — BCube Connected
// Crossbars (Li & Yang) — the dual-port-server ancestor that ABCCC
// generalizes. It is written directly from the p = 2 semantics, without
// reference to package core, so that a structural-isomorphism test between
// BCCC(n,k) and ABCCC(n,k,2) cross-validates both constructions.
//
// BCCC(n,k) has (k+1)·n^(k+1) dual-port servers. For every (k+1)-digit
// base-n vector a there is a crossbar: a local switch joining k+1 servers
// S(a,0..k), where S(a,l) dedicates its second port to the level-l switch
// W(l, a minus digit l) joining the n servers that differ from it only in
// digit l.
package bccc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Config selects a BCCC instance: n-port switches, order k.
type Config struct {
	N int
	K int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("bccc: switch radix N = %d, need >= 2", c.N)
	}
	if c.K < 0 {
		return fmt.Errorf("bccc: order K = %d, need >= 0", c.K)
	}
	if c.K+1 > c.N {
		return fmt.Errorf("bccc: crossbar needs %d servers but switches have %d ports", c.K+1, c.N)
	}
	servers := c.K + 1
	for i := 0; i <= c.K; i++ {
		servers *= c.N
		if servers > 4<<20 {
			return fmt.Errorf("bccc: instance too large (N=%d K=%d)", c.N, c.K)
		}
	}
	return nil
}

// BCCC is a built instance; immutable after Build.
type BCCC struct {
	cfg     Config
	net     *topology.Network
	servers []int // servers[vec*(k+1)+l]
	localSw []int
	levelSw [][]int
	vecs    int
}

var _ topology.Topology = (*BCCC)(nil)

// Build constructs BCCC(n,k).
func Build(cfg Config) (*BCCC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	vecs := 1
	for i := 0; i <= cfg.K; i++ {
		vecs *= cfg.N
	}
	t := &BCCC{
		cfg:  cfg,
		net:  topology.NewNetwork(fmt.Sprintf("BCCC(%d,%d)", cfg.N, cfg.K)),
		vecs: vecs,
	}
	digits := cfg.K + 1
	t.servers = make([]int, vecs*digits)
	t.localSw = make([]int, vecs)
	for vec := 0; vec < vecs; vec++ {
		t.localSw[vec] = t.net.AddSwitch("L" + strconv.Itoa(vec))
		for l := 0; l < digits; l++ {
			id := t.net.AddServer(t.serverLabel(vec, l))
			t.servers[vec*digits+l] = id
			if err := t.net.Connect(id, t.localSw[vec]); err != nil {
				return nil, fmt.Errorf("bccc: wire local: %w", err)
			}
		}
	}
	t.levelSw = make([][]int, digits)
	for l := 0; l < digits; l++ {
		t.levelSw[l] = make([]int, vecs/cfg.N)
		for cvec := range t.levelSw[l] {
			sw := t.net.AddSwitch("W" + strconv.Itoa(l) + "/" + strconv.Itoa(cvec))
			t.levelSw[l][cvec] = sw
			for d := 0; d < cfg.N; d++ {
				vec := t.expand(cvec, l, d)
				if err := t.net.Connect(t.servers[vec*digits+l], sw); err != nil {
					return nil, fmt.Errorf("bccc: wire level %d: %w", l, err)
				}
			}
		}
	}
	return t, nil
}

// MustBuild is Build for known-good configs.
func MustBuild(cfg Config) *BCCC {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Network returns the built network.
func (t *BCCC) Network() *topology.Network { return t.net }

// Config returns the instance parameters.
func (t *BCCC) Config() Config { return t.cfg }

// ServerAt returns the node index of server l of crossbar vec.
func (t *BCCC) ServerAt(vec, l int) int { return t.servers[vec*(t.cfg.K+1)+l] }

// LocalSwitch returns the node index of crossbar vec's local switch.
func (t *BCCC) LocalSwitch(vec int) int { return t.localSw[vec] }

// LevelSwitch returns the node index of level switch (l, cvec).
func (t *BCCC) LevelSwitch(l, cvec int) int { return t.levelSw[l][cvec] }

// NumVectors returns the number of crossbars.
func (t *BCCC) NumVectors() int { return t.vecs }

// Properties returns the analytic comparison-table row; see
// Config.Properties.
func (t *BCCC) Properties() topology.Properties { return t.cfg.Properties() }

// Properties returns the analytic comparison-table row without building the
// instance. The diameter is 2k+2 hops: k+1 level crossings plus up to k+1
// realignments (one before each crossing or one final), since every level
// lives on its own server.
func (c Config) Properties() topology.Properties {
	digits := c.K + 1
	vecs := 1
	for i := 0; i <= c.K; i++ {
		vecs *= c.N
	}
	diameter := 2 * digits
	if digits == 1 {
		diameter = 1
	}
	return topology.Properties{
		Name:           fmt.Sprintf("BCCC(%d,%d)", c.N, c.K),
		Servers:        digits * vecs,
		Switches:       vecs + digits*(vecs/c.N),
		Links:          2 * digits * vecs,
		ServerPorts:    2,
		SwitchPorts:    c.N,
		Diameter:       diameter,
		DiameterLinks:  2 * diameter,
		BisectionLinks: (c.N / 2) * (vecs / c.N),
	}
}

// Route implements BCCC's digit-correction one-to-one routing. The
// correction permutation puts the source server's own level first and the
// destination server's level last (each saves one realignment hop), with the
// remaining differing levels in ascending order; this achieves the 2k+2
// diameter bound.
func (t *BCCC) Route(src, dst int) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)

	var first, middle, last []int
	for l := 0; l < digits; l++ {
		if t.digit(sVec, l) == t.digit(dVec, l) {
			continue
		}
		switch l {
		case sL:
			first = append(first, l)
		case dL:
			last = append(last, l)
		default:
			middle = append(middle, l)
		}
	}
	order := append(append(first, middle...), last...)

	cur, curL := sVec, sL
	path := topology.Path{src}
	for _, l := range order {
		if curL != l {
			path = append(path, t.localSw[cur], t.servers[cur*digits+l])
			curL = l
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, t.digit(dVec, l))
		path = append(path, t.servers[cur*digits+l])
	}
	if curL != dL {
		path = append(path, t.localSw[cur], dst)
	}
	return path, nil
}

// locate recovers (vec, level) of a server node by index arithmetic: nodes
// are created crossbar by crossbar, one switch then k+1 servers.
func (t *BCCC) locate(node int) (vec, l int) {
	stride := t.cfg.K + 2 // local switch + k+1 servers per crossbar
	vec = node / stride
	l = node%stride - 1
	return vec, l
}

func (t *BCCC) serverLabel(vec, l int) string {
	var b strings.Builder
	b.WriteByte('S')
	b.WriteString(strconv.Itoa(vec))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(l))
	return b.String()
}

func (t *BCCC) digit(vec, l int) int {
	for i := 0; i < l; i++ {
		vec /= t.cfg.N
	}
	return vec % t.cfg.N
}

func (t *BCCC) setDigit(vec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return vec + (d-(vec/pow)%t.cfg.N)*pow
}

func (t *BCCC) contract(vec, l int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return (vec/(pow*t.cfg.N))*pow + vec%pow
}

func (t *BCCC) expand(cvec, l, d int) int {
	pow := 1
	for i := 0; i < l; i++ {
		pow *= t.cfg.N
	}
	return (cvec/pow)*pow*t.cfg.N + d*pow + cvec%pow
}
