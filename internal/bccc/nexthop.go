package bccc

import (
	"fmt"
)

// NextHop makes the hop-by-hop forwarding decision at node cur for a packet
// heading to server dst, using local state only: a server owning the lowest
// differing level crosses its level switch, any other server hands the
// packet to its local switch; a local switch forwards to the member owning
// the next level (or the destination); a level switch delivers to the port
// matching the destination digit. Satisfies the emulator's Forwarder
// interface, so BCCC runs as a distributed system too.
func (t *BCCC) NextHop(cur, dst int) (int, error) {
	if !t.net.IsServer(dst) {
		return 0, fmt.Errorf("bccc: next hop destination %d is not a server", dst)
	}
	if cur == dst {
		return dst, nil
	}
	digits := t.cfg.K + 1
	dVec, dL := t.locate(dst)
	if t.net.IsServer(cur) {
		cVec, cL := t.locate(cur)
		l, ok := t.lowestDiff(cVec, dVec)
		if !ok {
			return t.localSw[cVec], nil // same crossbar, different server
		}
		if cL == l {
			return t.levelSw[l][t.contract(cVec, l)], nil
		}
		return t.localSw[cVec], nil
	}
	// Switch: classify via its first neighbors.
	nbrs := t.net.Graph().Neighbors(cur, nil)
	if len(nbrs) == 0 {
		return 0, fmt.Errorf("bccc: switch %d has no ports", cur)
	}
	v0, _ := t.locate(nbrs[0])
	if t.localSw[v0] == cur {
		if v0 == dVec {
			return t.servers[dVec*digits+dL], nil
		}
		l, _ := t.lowestDiff(v0, dVec)
		return t.servers[v0*digits+l], nil
	}
	if len(nbrs) < 2 {
		return 0, fmt.Errorf("bccc: cannot classify switch %d", cur)
	}
	v1, _ := t.locate(nbrs[1])
	l, ok := t.lowestDiff(v0, v1)
	if !ok {
		return 0, fmt.Errorf("bccc: cannot classify switch %d", cur)
	}
	target := t.setDigit(v0, l, t.digit(dVec, l))
	return t.servers[target*digits+l], nil
}

// lowestDiff returns the lowest level where two vectors differ.
func (t *BCCC) lowestDiff(a, b int) (int, bool) {
	for l := 0; l <= t.cfg.K; l++ {
		if t.digit(a, l) != t.digit(b, l) {
			return l, true
		}
	}
	return 0, false
}
