package bccc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func configs() []Config {
	return []Config{
		{N: 2, K: 0},
		{N: 2, K: 1},
		{N: 3, K: 1},
		{N: 3, K: 2},
		{N: 4, K: 2},
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		cfg     Config
		wantErr bool
	}{
		{cfg: Config{N: 4, K: 2}},
		{cfg: Config{N: 1, K: 0}, wantErr: true},
		{cfg: Config{N: 4, K: -1}, wantErr: true},
		{cfg: Config{N: 2, K: 2}, wantErr: true},  // crossbar overflow
		{cfg: Config{N: 16, K: 6}, wantErr: true}, // too large
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("Validate(%+v) = %v, wantErr %v", tt.cfg, err, tt.wantErr)
		}
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		props := tp.Properties()
		net := tp.Network()
		if net.NumServers() != props.Servers || net.NumSwitches() != props.Switches ||
			net.NumLinks() != props.Links {
			t.Errorf("%s: built %d/%d/%d, formula %d/%d/%d", net.Name(),
				net.NumServers(), net.NumSwitches(), net.NumLinks(),
				props.Servers, props.Switches, props.Links)
		}
		if got := net.MaxDegree(topology.Server); got > 2 {
			t.Errorf("%s: server degree %d > 2 NIC ports", net.Name(), got)
		}
		if got := net.MaxDegree(topology.Switch); got > cfg.N {
			t.Errorf("%s: switch degree %d > %d", net.Name(), got, cfg.N)
		}
	}
}

func TestRouteAllPairsValidAndWithinDiameter(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		d := tp.Properties().Diameter
		for _, src := range net.Servers() {
			for _, dst := range net.Servers() {
				p, err := tp.Route(src, dst)
				if err != nil {
					t.Fatalf("%s: Route: %v", net.Name(), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if h := p.SwitchHops(net); h > d {
					t.Fatalf("%s: %s->%s took %d hops > diameter %d", net.Name(),
						net.Label(src), net.Label(dst), h, d)
				}
			}
		}
	}
}

func TestAnalyticDiameterTight(t *testing.T) {
	for _, cfg := range configs() {
		tp := MustBuild(cfg)
		net := tp.Network()
		servers := net.Servers()
		worst := 0
		for _, src := range servers {
			ecc, ok := net.Graph().Eccentricity(src, servers, nil)
			if !ok {
				t.Fatalf("%s: disconnected", net.Name())
			}
			if ecc > worst {
				worst = ecc
			}
		}
		if worst/2 != tp.Properties().Diameter {
			t.Errorf("%s: measured diameter %d hops, analytic %d",
				net.Name(), worst/2, tp.Properties().Diameter)
		}
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	s := tp.Network().Server(4)
	p, err := tp.Route(s, s)
	if err != nil || len(p) != 1 {
		t.Errorf("Route(self) = %v, %v", p, err)
	}
	sw := tp.Network().Switches()[0]
	if _, err := tp.Route(sw, s); err == nil {
		t.Error("Route(switch, server) succeeded")
	}
	if _, err := Build(Config{N: 1, K: 0}); err == nil {
		t.Error("Build(invalid) succeeded")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild(invalid) did not panic")
		}
	}()
	MustBuild(Config{N: 0})
}

func TestAccessors(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	if tp.Config() != (Config{N: 3, K: 1}) {
		t.Errorf("Config = %+v", tp.Config())
	}
	if tp.NumVectors() != 9 {
		t.Errorf("NumVectors = %d, want 9", tp.NumVectors())
	}
	// ServerAt / locate round trip.
	for vec := 0; vec < tp.NumVectors(); vec++ {
		for l := 0; l <= tp.Config().K; l++ {
			node := tp.ServerAt(vec, l)
			gotVec, gotL := tp.locate(node)
			if gotVec != vec || gotL != l {
				t.Fatalf("locate(ServerAt(%d,%d)) = (%d,%d)", vec, l, gotVec, gotL)
			}
		}
	}
	if !tp.Network().IsServer(tp.ServerAt(0, 0)) {
		t.Error("ServerAt returned a non-server")
	}
	if tp.Network().IsServer(tp.LocalSwitch(0)) || tp.Network().IsServer(tp.LevelSwitch(0, 0)) {
		t.Error("switch accessors returned servers")
	}
}

// TestIsomorphicToABCCCWithP2 is the cross-validation at the heart of the
// reconstruction: the independently implemented BCCC(n,k) must be exactly
// the graph of ABCCC(n,k,2) under the natural correspondence
// server (vec,l) <-> server (vec, j=l), local <-> local, level <-> level.
func TestIsomorphicToABCCCWithP2(t *testing.T) {
	for _, cfg := range configs() {
		b := MustBuild(cfg)
		a := core.MustBuild(core.Config{N: cfg.N, K: cfg.K, P: 2})
		bn, an := b.Network(), a.Network()
		if bn.NumServers() != an.NumServers() || bn.NumSwitches() != an.NumSwitches() ||
			bn.NumLinks() != an.NumLinks() {
			t.Fatalf("%s vs %s: size mismatch", bn.Name(), an.Name())
		}

		// Build node mapping BCCC -> ABCCC.
		mapping := make(map[int]int, bn.Graph().NumNodes())
		digits := cfg.K + 1
		for vec := 0; vec < b.NumVectors(); vec++ {
			for l := 0; l < digits; l++ {
				an, err := a.NodeOf(core.Addr{Vec: vec, J: l})
				if err != nil {
					t.Fatal(err)
				}
				mapping[b.ServerAt(vec, l)] = an
			}
		}
		// Switches: map via shared neighbors. A BCCC switch maps to the
		// unique ABCCC switch adjacent to the images of all its neighbors.
		for _, sw := range bn.Switches() {
			nbrs := bn.Graph().Neighbors(sw, nil)
			img := commonSwitchNeighbor(a, mapping, nbrs)
			if img == -1 {
				t.Fatalf("%s: switch %s has no image", bn.Name(), bn.Label(sw))
			}
			mapping[sw] = img
		}
		// Every BCCC edge must exist in ABCCC under the mapping.
		g := bn.Graph()
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(e)
			if an.Graph().EdgeBetween(mapping[int(edge.U)], mapping[int(edge.V)]) == -1 {
				t.Fatalf("%s: edge %s-%s missing in ABCCC image", bn.Name(),
					bn.Label(int(edge.U)), bn.Label(int(edge.V)))
			}
		}
	}
}

// commonSwitchNeighbor finds the ABCCC switch adjacent to the images of all
// the given BCCC servers.
func commonSwitchNeighbor(a *core.ABCCC, mapping map[int]int, servers []int) int {
	g := a.Network().Graph()
	counts := map[int]int{}
	for _, s := range servers {
		for _, nb := range g.Neighbors(mapping[s], nil) {
			if !a.Network().IsServer(nb) {
				counts[nb]++
			}
		}
	}
	for sw, c := range counts {
		if c == len(servers) {
			return sw
		}
	}
	return -1
}
