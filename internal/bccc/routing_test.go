package bccc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestRouteWithStrategyAllPairsValid(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 2})
	net := tp.Network()
	servers := net.Servers()[:24]
	for _, s := range []Strategy{StrategyGrouped, StrategyIdentity, StrategyReversed, StrategyRandom} {
		for _, src := range servers {
			for _, dst := range servers {
				p, err := tp.RouteWithStrategy(src, dst, s, 5)
				if err != nil {
					t.Fatalf("%v %s->%s: %v", s, net.Label(src), net.Label(dst), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%v: %v", s, err)
				}
			}
		}
	}
	if _, err := tp.RouteWithStrategy(servers[0], servers[1], Strategy(0), 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	tests := map[Strategy]string{
		StrategyGrouped:  "grouped",
		StrategyIdentity: "identity",
		StrategyReversed: "reversed",
		StrategyRandom:   "random",
		Strategy(9):      "strategy(9)",
	}
	for s, want := range tests {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestRouteLengthsMatchABCCCP2 cross-validates the two implementations at
// the routing level: for every pair, BCCC's grouped route must have the same
// hop count as ABCCC(n,k,2)'s (the graphs are isomorphic and both grouped
// strategies are optimal).
func TestRouteLengthsMatchABCCCP2(t *testing.T) {
	b := MustBuild(Config{N: 3, K: 1})
	a := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	bn, an := b.Network(), a.Network()
	digits := 2
	for vec := 0; vec < b.NumVectors(); vec++ {
		for l := 0; l < digits; l++ {
			for vec2 := 0; vec2 < b.NumVectors(); vec2++ {
				for l2 := 0; l2 < digits; l2++ {
					bp, err := b.Route(b.ServerAt(vec, l), b.ServerAt(vec2, l2))
					if err != nil {
						t.Fatal(err)
					}
					as, err := a.NodeOf(core.Addr{Vec: vec, J: l})
					if err != nil {
						t.Fatal(err)
					}
					ad, err := a.NodeOf(core.Addr{Vec: vec2, J: l2})
					if err != nil {
						t.Fatal(err)
					}
					ap, err := a.Route(as, ad)
					if err != nil {
						t.Fatal(err)
					}
					if bp.SwitchHops(bn) != ap.SwitchHops(an) {
						t.Fatalf("(%d,%d)->(%d,%d): BCCC %d hops, ABCCC %d hops",
							vec, l, vec2, l2, bp.SwitchHops(bn), ap.SwitchHops(an))
					}
				}
			}
		}
	}
}

// ParallelPaths validity, disjointness, plurality, and the max-flow bound
// are covered by the shared topotest.RunMultipathRouter battery.

func TestRouteAvoidingSurvivesPrimaryFailure(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	net := tp.Network()
	src, dst := tp.ServerAt(0, 0), tp.ServerAt(8, 1)
	primary, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	view.FailNode(primary[1])
	p, err := tp.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding: %v", err)
	}
	if !p.Alive(net, view) {
		t.Error("dead components on route")
	}
	// Failed endpoint.
	view.FailNode(dst)
	if _, err := tp.RouteAvoiding(src, dst, view); err == nil {
		t.Error("route to dead endpoint succeeded")
	}
	// Self.
	if p, err := tp.RouteAvoiding(src, src, view); err != nil || len(p) != 1 {
		t.Errorf("self = %v, %v", p, err)
	}
}

func TestNextHopWalksAllPairs(t *testing.T) {
	tp := MustBuild(Config{N: 3, K: 1})
	net := tp.Network()
	budget := 2*(2*(tp.Config().K+1)+1) + 2
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			cur := src
			steps := 0
			for cur != dst {
				next, err := tp.NextHop(cur, dst)
				if err != nil {
					t.Fatalf("NextHop(%s,%s): %v", net.Label(cur), net.Label(dst), err)
				}
				if net.Graph().EdgeBetween(cur, next) == -1 {
					t.Fatalf("non-neighbor hop")
				}
				cur = next
				if steps++; steps > budget {
					t.Fatalf("walk too long: %s -> %s", net.Label(src), net.Label(dst))
				}
			}
		}
	}
}

func TestNextHopErrors(t *testing.T) {
	tp := MustBuild(Config{N: 2, K: 1})
	if _, err := tp.NextHop(tp.ServerAt(0, 0), tp.Network().Switches()[0]); err == nil {
		t.Error("switch destination accepted")
	}
	s := tp.ServerAt(1, 1)
	if next, err := tp.NextHop(s, s); err != nil || next != s {
		t.Errorf("self hop = %d, %v", next, err)
	}
}
