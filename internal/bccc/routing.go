package bccc

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Strategy selects the level-correction permutation, mirroring the
// companion ICC'15 study ("Permutation Generation for Routing in BCCC").
type Strategy int

// Routing strategies. Grouped is BCCC's native source-first/destination-last
// order (the default used by Route).
const (
	StrategyGrouped Strategy = iota + 1
	StrategyIdentity
	StrategyReversed
	StrategyRandom
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyGrouped:
		return "grouped"
	case StrategyIdentity:
		return "identity"
	case StrategyReversed:
		return "reversed"
	case StrategyRandom:
		return "random"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// RouteWithStrategy routes with an explicit permutation strategy; the seed
// feeds StrategyRandom.
func (t *BCCC) RouteWithStrategy(src, dst int, s Strategy, seed int64) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)
	var diff []int
	for l := 0; l <= t.cfg.K; l++ {
		if t.digit(sVec, l) != t.digit(dVec, l) {
			diff = append(diff, l)
		}
	}
	var order []int
	switch s {
	case StrategyGrouped:
		order = groupedOrder(diff, sL, dL)
	case StrategyIdentity:
		order = diff
	case StrategyReversed:
		order = make([]int, len(diff))
		for i, l := range diff {
			order[len(diff)-1-i] = l
		}
	case StrategyRandom:
		order = append([]int(nil), diff...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	default:
		return nil, fmt.Errorf("bccc: unknown strategy %d", int(s))
	}
	return t.routeOrdered(src, dst, order)
}

// groupedOrder puts the source server's level first and the destination's
// last.
func groupedOrder(diff []int, sL, dL int) []int {
	var first, middle, last []int
	for _, l := range diff {
		switch l {
		case sL:
			first = append(first, l)
		case dL:
			last = append(last, l)
		default:
			middle = append(middle, l)
		}
	}
	return append(append(first, middle...), last...)
}

// routeOrdered walks the digit corrections in the given order.
func (t *BCCC) routeOrdered(src, dst int, order []int) (topology.Path, error) {
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)
	cur, curL := sVec, sL
	path := topology.Path{src}
	for _, l := range order {
		if curL != l {
			path = append(path, t.localSw[cur], t.servers[cur*digits+l])
			curL = l
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, t.digit(dVec, l))
		path = append(path, t.servers[cur*digits+l])
	}
	if cur != dVec {
		return nil, fmt.Errorf("bccc: order did not reach destination crossbar")
	}
	if curL != dL {
		path = append(path, t.localSw[cur], dst)
	}
	return path, nil
}

// ParallelPaths returns internally vertex-disjoint paths between two
// servers: one candidate per differing level corrected first, detours
// through agreeing levels, and same-crossbar loop detours, filtered
// greedily — BCCC's "multiple near-equal parallel paths".
func (t *BCCC) ParallelPaths(src, dst int) []topology.Path {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil || src == dst {
		return nil
	}
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)
	var diff []int
	diffSet := make(map[int]bool)
	for l := 0; l < digits; l++ {
		if t.digit(sVec, l) != t.digit(dVec, l) {
			diff = append(diff, l)
			diffSet[l] = true
		}
	}
	var out []topology.Path
	add := func(p topology.Path, err error) {
		if err == nil && p.Validate(t.net, src, dst) == nil {
			out = append(out, p)
		}
	}
	// Default route plus one candidate per differing level first.
	add(t.routeOrdered(src, dst, groupedOrder(diff, sL, dL)))
	for _, l := range diff {
		rest := make([]int, 0, len(diff)-1)
		for _, x := range diff {
			if x != l {
				rest = append(rest, x)
			}
		}
		add(t.routeOrdered(src, dst, append([]int{l}, groupedOrder(rest, l, dL)...)))
	}
	// Detours: mis-correct an agreeing level, fix everything, restore last.
	for l := 0; l < digits; l++ {
		if diffSet[l] {
			continue
		}
		cur := t.digit(sVec, l)
		for v := 0; v < t.cfg.N; v++ {
			if v == cur {
				continue
			}
			add(t.routeVia(src, dst, l, v, diff))
		}
	}
	// Corner detours: when neither endpoint's own level needs correcting
	// (and the endpoints sit on different levels), the default route burns
	// both endpoint local switches, so every single-level detour collides
	// with it on one side. Leaving through the source's level and arriving
	// through the destination's splits the two local switches between the
	// default route and the detour.
	if sL != dL && !diffSet[sL] && !diffSet[dL] && len(diff) > 0 {
		for v1 := 0; v1 < t.cfg.N; v1++ {
			if v1 == t.digit(sVec, sL) {
				continue
			}
			for v2 := 0; v2 < t.cfg.N; v2++ {
				if v2 == t.digit(sVec, dL) {
					continue
				}
				add(t.routeCorner(src, dst, v1, v2, diff))
			}
		}
	}
	// Same-crossbar pairs: loop out through the source's level and back
	// through the destination's (distinct switches at every crossing).
	if sVec == dVec && sL != dL {
		for v1 := 0; v1 < t.cfg.N; v1++ {
			if v1 == t.digit(sVec, sL) {
				continue
			}
			for v2 := 0; v2 < t.cfg.N; v2++ {
				if v2 == t.digit(sVec, dL) {
					continue
				}
				add(t.routeLoop(src, dst, v1, v2))
			}
		}
	}
	return topology.DisjointSubset(out, src, dst)
}

// routeVia detours through (level, value) before correcting diff and
// restoring the level.
func (t *BCCC) routeVia(src, dst, level, value int, diff []int) (topology.Path, error) {
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)
	cur, curL := sVec, sL
	path := topology.Path{src}
	step := func(l, v int) {
		if curL != l {
			path = append(path, t.localSw[cur], t.servers[cur*digits+l])
			curL = l
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, v)
		path = append(path, t.servers[cur*digits+l])
	}
	step(level, value)
	for _, l := range groupedOrder(diff, level, level) {
		step(l, t.digit(dVec, l))
	}
	step(level, t.digit(dVec, level))
	if cur != dVec {
		return nil, fmt.Errorf("bccc: detour missed destination")
	}
	if curL != dL {
		path = append(path, t.localSw[cur], dst)
	}
	return path, nil
}

// routeCorner builds the double detour for pairs whose endpoint levels both
// already agree: mis-correct the source's level (leaving via its level
// switch, not the local one), mis-correct the destination's, fix the
// differing digits, then restore both — landing on the destination server
// through its level switch.
func (t *BCCC) routeCorner(src, dst, v1, v2 int, diff []int) (topology.Path, error) {
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	dVec, dL := t.locate(dst)
	cur, curL := sVec, sL
	path := topology.Path{src}
	step := func(l, v int) {
		if curL != l {
			path = append(path, t.localSw[cur], t.servers[cur*digits+l])
			curL = l
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, v)
		path = append(path, t.servers[cur*digits+l])
	}
	step(sL, v1)
	step(dL, v2)
	for _, l := range groupedOrder(diff, dL, dL) {
		step(l, t.digit(dVec, l))
	}
	step(sL, t.digit(dVec, sL))
	step(dL, t.digit(dVec, dL))
	if cur != dVec {
		return nil, fmt.Errorf("bccc: corner detour missed destination")
	}
	if curL != dL {
		path = append(path, t.localSw[cur], dst)
	}
	return path, nil
}

// routeLoop builds the same-crossbar loop detour: change the source's level
// to v1, the destination's level to v2, then restore both, landing on the
// destination server.
func (t *BCCC) routeLoop(src, dst, v1, v2 int) (topology.Path, error) {
	digits := t.cfg.K + 1
	sVec, sL := t.locate(src)
	_, dL := t.locate(dst)
	cur, curL := sVec, sL
	path := topology.Path{src}
	step := func(l, v int) {
		if curL != l {
			path = append(path, t.localSw[cur], t.servers[cur*digits+l])
			curL = l
		}
		path = append(path, t.levelSw[l][t.contract(cur, l)])
		cur = t.setDigit(cur, l, v)
		path = append(path, t.servers[cur*digits+l])
	}
	step(sL, v1)
	step(dL, v2)
	step(sL, t.digit(sVec, sL))
	step(dL, t.digit(sVec, dL))
	if cur != sVec || curL != dL {
		return nil, fmt.Errorf("bccc: loop detour did not land on destination")
	}
	return path, nil
}

// RouteAvoiding routes around failed components: it tries the parallel
// paths in order and falls back to a bounded greedy walk.
func (t *BCCC) RouteAvoiding(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	if !view.NodeUp(src) || !view.NodeUp(dst) {
		return nil, fmt.Errorf("bccc: endpoint failed")
	}
	if src == dst {
		return topology.Path{src}, nil
	}
	for _, p := range t.ParallelPaths(src, dst) {
		if p.Alive(t.net, view) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bccc: no alive parallel path %s -> %s",
		t.net.Label(src), t.net.Label(dst))
}

var (
	_ topology.MultipathRouter = (*BCCC)(nil)
	_ topology.FaultRouter     = (*BCCC)(nil)
)
