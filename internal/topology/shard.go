package topology

// Sharder is implemented by structures with a natural locality-preserving
// partition: nodes that exchange most of their traffic — an ABCCC crossbar,
// a fat-tree pod — land in the same shard, so the sharded simulators hand
// off as few packets as possible at window barriers.
type Sharder interface {
	// ShardOf returns the shard of node id under an s-way partition. It
	// must be deterministic, independent of any run state, and in [0, s).
	ShardOf(id, s int) int
}

// Networked is the minimal surface ShardNodes needs from a built structure.
// It is satisfied by topology.Topology and by the emulator's Forwarder
// alike, so every engine that partitions work by locality can reuse the same
// cuts.
type Networked interface {
	Network() *Network
}

// ShardNodes partitions every node of t's network into s shards and returns
// the node-indexed shard table. Structures implementing Sharder choose their
// own cut; everything else falls back to contiguous node-id blocks, which
// already follows locality for the constructors in this repository (they add
// nodes crossbar by crossbar / pod by pod). s is clamped to [1, NumNodes].
func ShardNodes(t Networked, s int) []int32 {
	n := t.Network().Graph().NumNodes()
	if s < 1 {
		s = 1
	}
	if s > n && n > 0 {
		s = n
	}
	out := make([]int32, n)
	if sh, ok := t.(Sharder); ok {
		for id := 0; id < n; id++ {
			v := sh.ShardOf(id, s)
			if v < 0 || v >= s {
				v = 0 // defensive: a broken Sharder must not corrupt the run
			}
			out[id] = int32(v)
		}
		return out
	}
	for id := 0; id < n; id++ {
		out[id] = int32(ContiguousShard(id, n, s))
	}
	return out
}

// ContiguousShard maps index id of a 0..n-1 range onto s equal contiguous
// blocks. It is the fallback partition and the building block family-specific
// Sharder implementations use to cut their own position spaces (crossbar
// vectors, pods) into s pieces.
func ContiguousShard(id, n, s int) int {
	if n <= 0 || s <= 1 {
		return 0
	}
	v := int(int64(id) * int64(s) / int64(n))
	if v >= s {
		v = s - 1
	}
	return v
}
