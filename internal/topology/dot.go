package topology

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the network in Graphviz DOT format: servers as boxes,
// switches as ellipses. Useful for visually inspecting small instances
// (`abccc dot | dot -Tsvg`).
func WriteDOT(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", n.Name())
	fmt.Fprintln(bw, "  layout=neato; overlap=false; splines=true;")
	for id := 0; id < n.Graph().NumNodes(); id++ {
		shape := "ellipse"
		if n.IsServer(id) {
			shape = "box"
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", id, n.Label(id), shape)
	}
	g := n.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(e)
		fmt.Fprintf(bw, "  n%d -- n%d;\n", edge.U, edge.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
