package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "tiny"`,
		`shape=box`,     // servers
		`shape=ellipse`, // switches
		"--",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "--"); got != n.NumLinks() {
		t.Errorf("%d edges rendered, want %d", got, n.NumLinks())
	}
	_ = s0
	_ = sw
	_ = s1
}
