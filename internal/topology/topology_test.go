package topology

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// tiny builds srv0 - sw - srv1 with one switch in the middle.
func tiny(t *testing.T) (*Network, int, int, int) {
	t.Helper()
	n := NewNetwork("tiny")
	s0 := n.AddServer("srv0")
	sw := n.AddSwitch("sw")
	s1 := n.AddServer("srv1")
	for _, pair := range [][2]int{{s0, sw}, {sw, s1}} {
		if err := n.Connect(pair[0], pair[1]); err != nil {
			t.Fatalf("Connect%v: %v", pair, err)
		}
	}
	return n, s0, sw, s1
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Server, "server"},
		{Switch, "switch"},
		{Kind(9), "kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestNetworkAccounting(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	if n.Name() != "tiny" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.NumServers() != 2 || n.NumSwitches() != 1 || n.NumLinks() != 2 {
		t.Errorf("counts = %d servers, %d switches, %d links; want 2,1,2",
			n.NumServers(), n.NumSwitches(), n.NumLinks())
	}
	if !n.IsServer(s0) || !n.IsServer(s1) || n.IsServer(sw) {
		t.Error("IsServer misclassifies nodes")
	}
	if n.IsServer(-1) || n.IsServer(99) {
		t.Error("IsServer accepts out-of-range ids")
	}
	if n.Kind(sw) != Switch {
		t.Errorf("Kind(sw) = %v", n.Kind(sw))
	}
	if n.Label(sw) != "sw" {
		t.Errorf("Label(sw) = %q", n.Label(sw))
	}
	if got := n.Servers(); len(got) != 2 || got[0] != s0 || got[1] != s1 {
		t.Errorf("Servers() = %v", got)
	}
	if got := n.Switches(); len(got) != 1 || got[0] != sw {
		t.Errorf("Switches() = %v", got)
	}
	if n.Server(1) != s1 {
		t.Errorf("Server(1) = %d, want %d", n.Server(1), s1)
	}
}

func TestServersReturnsCopy(t *testing.T) {
	n, _, _, _ := tiny(t)
	servers := n.Servers()
	servers[0] = 999
	if n.Servers()[0] == 999 {
		t.Error("Servers() exposed internal slice")
	}
	switches := n.Switches()
	switches[0] = 999
	if n.Switches()[0] == 999 {
		t.Error("Switches() exposed internal slice")
	}
}

func TestMaxDegree(t *testing.T) {
	n, _, _, _ := tiny(t)
	if got := n.MaxDegree(Server); got != 1 {
		t.Errorf("MaxDegree(Server) = %d, want 1", got)
	}
	if got := n.MaxDegree(Switch); got != 2 {
		t.Errorf("MaxDegree(Switch) = %d, want 2", got)
	}
}

func TestPathLenAndSwitchHops(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	p := Path{s0, sw, s1}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if p.SwitchHops(n) != 1 {
		t.Errorf("SwitchHops = %d, want 1", p.SwitchHops(n))
	}
	if (Path{}).Len() != 0 {
		t.Error("empty path Len != 0")
	}
}

func TestPathValidate(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	tests := []struct {
		name    string
		p       Path
		src     int
		dst     int
		wantErr string
	}{
		{name: "ok", p: Path{s0, sw, s1}, src: s0, dst: s1},
		{name: "empty", p: Path{}, src: s0, dst: s1, wantErr: "empty"},
		{name: "wrong start", p: Path{sw, s1}, src: s0, dst: s1, wantErr: "starts"},
		{name: "wrong end", p: Path{s0, sw}, src: s0, dst: s1, wantErr: "ends"},
		{name: "no cable", p: Path{s0, s1}, src: s0, dst: s1, wantErr: "no cable"},
		{name: "revisit", p: Path{s0, sw, s0}, src: s0, dst: s0, wantErr: "revisits"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(n, tt.src, tt.dst)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestPathAlive(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	p := Path{s0, sw, s1}
	if !p.Alive(n, nil) {
		t.Error("Alive = false with nil view")
	}
	v := graph.NewView(n.Graph())
	v.FailNode(sw)
	if p.Alive(n, v) {
		t.Error("Alive = true through failed switch")
	}
	v2 := graph.NewView(n.Graph())
	v2.FailEdge(n.Graph().EdgeBetween(sw, s1))
	if p.Alive(n, v2) {
		t.Error("Alive = true over failed cable")
	}
}

func TestCheckEndpoints(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	if err := CheckEndpoints(n, s0, s1); err != nil {
		t.Errorf("CheckEndpoints(servers): %v", err)
	}
	if err := CheckEndpoints(n, sw, s1); !errors.Is(err, ErrNotServer) {
		t.Errorf("CheckEndpoints(switch src) = %v, want ErrNotServer", err)
	}
	if err := CheckEndpoints(n, s0, sw); !errors.Is(err, ErrNotServer) {
		t.Errorf("CheckEndpoints(switch dst) = %v, want ErrNotServer", err)
	}
}

func TestConnectError(t *testing.T) {
	n, s0, _, _ := tiny(t)
	if err := n.Connect(s0, 99); err == nil {
		t.Error("Connect out of range succeeded")
	}
}
