// Package topology defines the common vocabulary shared by every data-center
// network structure in this repository: a Network (graph + node roles), the
// Topology and routing interfaces, validated Paths measured in switch hops,
// and the analytic Properties record used by the comparison tables.
package topology

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Kind classifies a network node.
type Kind int

// Node kinds. Server-centric structures forward traffic through servers;
// switches are dumb crossbars.
const (
	Server Kind = iota + 1
	Switch
)

// String returns "server" or "switch".
func (k Kind) String() string {
	switch k {
	case Server:
		return "server"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Network is a built data-center interconnect: an undirected graph whose
// nodes are labeled servers and switches. Topology constructors populate it
// once; afterwards it is read-only and safe for concurrent use.
type Network struct {
	name     string
	g        *graph.Graph
	kind     []Kind
	label    []string
	servers  []int
	switches []int
}

// NewNetwork returns an empty network with the given display name.
func NewNetwork(name string) *Network {
	return &Network{name: name, g: graph.New(0)}
}

// Name returns the display name, e.g. "ABCCC(4,1,2)".
func (n *Network) Name() string { return n.name }

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// AddServer adds a server node with the given label and returns its index.
func (n *Network) AddServer(label string) int {
	id := n.g.AddNode()
	n.kind = append(n.kind, Server)
	n.label = append(n.label, label)
	n.servers = append(n.servers, id)
	return id
}

// AddSwitch adds a switch node with the given label and returns its index.
func (n *Network) AddSwitch(label string) int {
	id := n.g.AddNode()
	n.kind = append(n.kind, Switch)
	n.label = append(n.label, label)
	n.switches = append(n.switches, id)
	return id
}

// Connect adds a cable between two nodes.
func (n *Network) Connect(u, v int) error {
	_, err := n.g.AddEdge(u, v)
	return err
}

// Kind returns the kind of node id.
func (n *Network) Kind(id int) Kind { return n.kind[id] }

// IsServer reports whether node id is a server.
func (n *Network) IsServer(id int) bool {
	return id >= 0 && id < len(n.kind) && n.kind[id] == Server
}

// Label returns the human-readable label of node id.
func (n *Network) Label(id int) string { return n.label[id] }

// Servers returns a copy of the server node indices in creation order.
func (n *Network) Servers() []int {
	out := make([]int, len(n.servers))
	copy(out, n.servers)
	return out
}

// Switches returns a copy of the switch node indices in creation order.
func (n *Network) Switches() []int {
	out := make([]int, len(n.switches))
	copy(out, n.switches)
	return out
}

// NumServers returns the number of servers.
func (n *Network) NumServers() int { return len(n.servers) }

// NumSwitches returns the number of switches.
func (n *Network) NumSwitches() int { return len(n.switches) }

// NumLinks returns the number of cables.
func (n *Network) NumLinks() int { return n.g.NumEdges() }

// Server returns the i-th server's node index (creation order).
func (n *Network) Server(i int) int { return n.servers[i] }

// MaxDegree returns the largest degree over nodes of the given kind: the NIC
// ports actually consumed per server, or the switch radix actually consumed.
func (n *Network) MaxDegree(k Kind) int {
	max := 0
	for id, kd := range n.kind {
		if kd == k && n.g.Degree(id) > max {
			max = n.g.Degree(id)
		}
	}
	return max
}

// Properties is the analytic row a structure contributes to the paper-style
// topology comparison table. Counts come from closed-form formulas, not from
// walking the built graph; tests cross-check them against the built graph.
type Properties struct {
	Name string
	// Servers, Switches, Links are the component counts.
	Servers  int
	Switches int
	Links    int
	// ServerPorts is the NIC ports required per server; SwitchPorts is the
	// switch radix required.
	ServerPorts int
	SwitchPorts int
	// Diameter is the worst-case one-to-one distance in the structure's own
	// paper's hop convention: server-relay hops for server-centric
	// structures (one hop = reaching the next server, whether through a
	// switch or a direct cable), switch traversals for switch-centric ones.
	Diameter int
	// DiameterLinks is the worst-case distance in cables traversed — the
	// uniform metric used when comparing across structures.
	DiameterLinks int
	// BisectionLinks is the analytic number of links crossing the canonical
	// worst-case balanced bisection.
	BisectionLinks int
}

// Topology is a built data-center structure together with its native
// one-to-one routing algorithm. Route endpoints are node indices that must be
// servers.
type Topology interface {
	Network() *Network
	Properties() Properties
	// Route returns a path from server src to server dst using the
	// structure's own routing algorithm (not graph-wide shortest path).
	Route(src, dst int) (Path, error)
}

// FaultRouter is implemented by structures with a fault-tolerant routing
// algorithm that can steer around failed components.
type FaultRouter interface {
	// RouteAvoiding routes from src to dst using only components alive in
	// view. It returns an error if the algorithm cannot find a path (the
	// graph may still be connected; the miss rate is an evaluation metric).
	RouteAvoiding(src, dst int, view *graph.View) (Path, error)
}

// MultipathRouter is implemented by structures that can produce multiple
// internally disjoint paths between a server pair.
type MultipathRouter interface {
	// ParallelPaths returns internally vertex-disjoint src->dst paths.
	ParallelPaths(src, dst int) []Path
}

// DisjointSubset keeps a maximal prefix-greedy subset of candidate src->dst
// paths whose internal nodes (everything but the shared endpoints) are
// pairwise disjoint. Candidates are considered in order, so callers list the
// preferred (e.g. default) route first. Every ParallelPaths implementation
// funnels its candidates through this filter, which is what makes the
// MultipathRouter contract — internal vertex-disjointness — hold by
// construction.
func DisjointSubset(candidates []Path, src, dst int) []Path {
	used := map[int]bool{}
	var kept []Path
	for _, p := range candidates {
		ok := true
		for _, node := range p {
			if node != src && node != dst && used[node] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, node := range p {
			if node != src && node != dst {
				used[node] = true
			}
		}
		kept = append(kept, p)
	}
	return kept
}

// Broadcaster is implemented by structures with a native one-to-all
// primitive (the GBC3 extension of ABCCC).
type Broadcaster interface {
	// BroadcastTree returns, for each server, the path the broadcast from
	// root takes to it, forming a tree (paths share prefixes).
	BroadcastTree(root int) (map[int]Path, error)
}

// Path is a node sequence from a source server to a destination server,
// including both endpoints and every intermediate server and switch.
type Path []int

// ErrNotServer is returned when a route endpoint is not a server node.
var ErrNotServer = errors.New("topology: route endpoint is not a server")

// Len returns the number of edges on the path.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// SwitchHops returns the path length in switch traversals, the standard
// distance metric for server-centric structures.
func (p Path) SwitchHops(n *Network) int {
	hops := 0
	for _, id := range p {
		if n.Kind(id) == Switch {
			hops++
		}
	}
	return hops
}

// Validate checks that the path starts at src, ends at dst, uses only
// existing cables, and never revisits a node.
func (p Path) Validate(n *Network, src, dst int) error {
	if len(p) == 0 {
		return errors.New("topology: empty path")
	}
	if p[0] != src {
		return fmt.Errorf("topology: path starts at %d, want %d", p[0], src)
	}
	if p[len(p)-1] != dst {
		return fmt.Errorf("topology: path ends at %d, want %d", p[len(p)-1], dst)
	}
	seen := make(map[int]bool, len(p))
	for i, id := range p {
		if seen[id] {
			return fmt.Errorf("topology: path revisits node %d (%s)", id, n.Label(id))
		}
		seen[id] = true
		if i == 0 {
			continue
		}
		if n.Graph().EdgeBetween(p[i-1], id) == -1 {
			return fmt.Errorf("topology: no cable between %s and %s",
				n.Label(p[i-1]), n.Label(id))
		}
	}
	return nil
}

// Alive reports whether every node and cable on the path is up in view.
func (p Path) Alive(n *Network, view *graph.View) bool {
	for i, id := range p {
		if !view.NodeUp(id) {
			return false
		}
		if i > 0 && !view.EdgeUp(n.Graph().EdgeBetween(p[i-1], id)) {
			return false
		}
	}
	return true
}

// CheckEndpoints returns ErrNotServer unless both src and dst are servers.
func CheckEndpoints(n *Network, src, dst int) error {
	if !n.IsServer(src) {
		return fmt.Errorf("%w: src node %d", ErrNotServer, src)
	}
	if !n.IsServer(dst) {
		return fmt.Errorf("%w: dst node %d", ErrNotServer, dst)
	}
	return nil
}
