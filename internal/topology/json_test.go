package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	n, s0, sw, s1 := tiny(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != n.Name() {
		t.Errorf("name %q, want %q", back.Name(), n.Name())
	}
	if back.NumServers() != n.NumServers() || back.NumSwitches() != n.NumSwitches() ||
		back.NumLinks() != n.NumLinks() {
		t.Errorf("counts differ: %d/%d/%d vs %d/%d/%d",
			back.NumServers(), back.NumSwitches(), back.NumLinks(),
			n.NumServers(), n.NumSwitches(), n.NumLinks())
	}
	// Indices preserved: same kinds and labels at the same positions, same
	// adjacency.
	for id := 0; id < n.Graph().NumNodes(); id++ {
		if back.Kind(id) != n.Kind(id) || back.Label(id) != n.Label(id) {
			t.Fatalf("node %d differs", id)
		}
	}
	if back.Graph().EdgeBetween(s0, sw) == -1 || back.Graph().EdgeBetween(sw, s1) == -1 {
		t.Error("adjacency lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "garbage", in: "not json"},
		{name: "bad kind", in: `{"name":"x","nodes":[{"kind":"router","label":"r"}],"links":[]}`},
		{name: "bad link", in: `{"name":"x","nodes":[{"kind":"server","label":"s"}],"links":[[0,9]]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("invalid input accepted")
			}
		})
	}
}
