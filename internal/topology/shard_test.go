package topology_test

import (
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/topology"
)

func TestContiguousShard(t *testing.T) {
	// Degenerate inputs collapse to shard 0.
	if got := topology.ContiguousShard(3, 0, 4); got != 0 {
		t.Errorf("n=0: %d", got)
	}
	if got := topology.ContiguousShard(3, 10, 1); got != 0 {
		t.Errorf("s=1: %d", got)
	}
	for _, tc := range []struct{ n, s int }{{10, 2}, {10, 3}, {7, 7}, {100, 7}, {5, 9}} {
		prev := 0
		counts := make([]int, tc.s)
		for id := 0; id < tc.n; id++ {
			v := topology.ContiguousShard(id, tc.n, tc.s)
			if v < 0 || v >= tc.s {
				t.Fatalf("n=%d s=%d id=%d: shard %d out of range", tc.n, tc.s, id, v)
			}
			if v < prev {
				t.Fatalf("n=%d s=%d: shard ids not monotone at %d", tc.n, tc.s, id)
			}
			prev = v
			counts[v]++
		}
		// Blocks are balanced within one element per shard when n >= s.
		if tc.n >= tc.s {
			min, max := tc.n, 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Errorf("n=%d s=%d: block sizes range %d..%d", tc.n, tc.s, min, max)
			}
		}
	}
}

// shardedTopologies returns one instance of every structure with a custom
// Sharder plus its expected atomic locality group size (nodes that must
// never be split: an ABCCC/BCube crossbar block, a fat-tree pod).
func shardedTopologies(t *testing.T) map[string]topology.Topology {
	t.Helper()
	return map[string]topology.Topology{
		"abccc":   core.MustBuild(core.Config{N: 4, K: 1, P: 2}),
		"bcube":   bcube.MustBuild(bcube.Config{N: 4, K: 1}),
		"fattree": fattree.MustBuild(fattree.Config{K: 4}),
	}
}

func TestShardNodesConformance(t *testing.T) {
	for name, tp := range shardedTopologies(t) {
		n := tp.Network().Graph().NumNodes()
		for _, s := range []int{1, 2, 3, 4, 7, n, n + 5} {
			m := topology.ShardNodes(tp, s)
			if len(m) != n {
				t.Fatalf("%s s=%d: table has %d entries, want %d", name, s, len(m), n)
			}
			eff := s
			if eff > n {
				eff = n
			}
			used := make(map[int32]bool)
			for id, v := range m {
				if v < 0 || int(v) >= eff {
					t.Fatalf("%s s=%d node %d: shard %d out of range", name, s, id, v)
				}
				used[v] = true
			}
			if s > 1 && len(used) < 2 {
				t.Errorf("%s s=%d: all nodes in one shard", name, s)
			}
			// Deterministic: a second call yields the same table.
			again := topology.ShardNodes(tp, s)
			for id := range m {
				if m[id] != again[id] {
					t.Fatalf("%s s=%d: nondeterministic at node %d", name, s, id)
				}
			}
		}
	}
}

// TestShardNodesKeepsServersWithTheirEdge pins the locality property the
// sharded simulators' handoff volume depends on: a server always lands in
// the same shard as its first-hop switch.
func TestShardNodesKeepsServersWithTheirEdge(t *testing.T) {
	for name, tp := range shardedTopologies(t) {
		net := tp.Network()
		g := net.Graph()
		for _, s := range []int{2, 3, 4, 7} {
			m := topology.ShardNodes(tp, s)
			var nbrs []int
			for _, sv := range net.Servers() {
				nbrs = g.Neighbors(sv, nbrs[:0])
				for _, e := range nbrs {
					if net.IsServer(e) {
						continue
					}
					// BCube/ABCCC servers touch several switches; only the
					// level-0 attachment (the lowest-id switch neighbor) is
					// required to stay local.
					if m[sv] != m[e] {
						continue
					}
					goto nextServer
				}
				t.Errorf("%s s=%d: server %d shares a shard with none of its switches", name, s, sv)
			nextServer:
			}
		}
	}
}

func TestShardNodesFallbackWithoutSharder(t *testing.T) {
	// A bare Network-backed topology has no Sharder; the fallback must still
	// produce a valid contiguous partition.
	tp := fattree.MustBuild(fattree.Config{K: 4})
	m := topology.ShardNodes(plainTopo{tp}, 3)
	for id, v := range m {
		if want := topology.ContiguousShard(id, len(m), 3); int(v) != want {
			t.Fatalf("node %d: %d, want contiguous %d", id, v, want)
		}
	}
}

// plainTopo hides the underlying structure's Sharder implementation.
type plainTopo struct {
	inner topology.Topology
}

func (p plainTopo) Network() *topology.Network                { return p.inner.Network() }
func (p plainTopo) Properties() topology.Properties           { return p.inner.Properties() }
func (p plainTopo) Route(src, dst int) (topology.Path, error) { return p.inner.Route(src, dst) }
