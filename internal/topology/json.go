package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNetwork is the interchange form of a built network: enough to
// reconstruct the graph with roles and labels in any tool.
type jsonNetwork struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Links [][2]int   `json:"links"`
}

type jsonNode struct {
	Kind  string `json:"kind"` // "server" or "switch"
	Label string `json:"label"`
}

// WriteJSON serializes the network (nodes with roles and labels, links as
// index pairs) for consumption by external tools.
func WriteJSON(w io.Writer, n *Network) error {
	out := jsonNetwork{
		Name:  n.Name(),
		Nodes: make([]jsonNode, n.Graph().NumNodes()),
		Links: make([][2]int, 0, n.NumLinks()),
	}
	for id := range out.Nodes {
		out.Nodes[id] = jsonNode{Kind: n.Kind(id).String(), Label: n.Label(id)}
	}
	g := n.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(e)
		out.Links = append(out.Links, [2]int{int(edge.U), int(edge.V)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON reconstructs a network from its WriteJSON form. Node indices are
// preserved, so paths and metrics computed on the copy line up with the
// original.
func ReadJSON(r io.Reader) (*Network, error) {
	var in jsonNetwork
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decode network: %w", err)
	}
	n := NewNetwork(in.Name)
	for i, node := range in.Nodes {
		var id int
		switch node.Kind {
		case "server":
			id = n.AddServer(node.Label)
		case "switch":
			id = n.AddSwitch(node.Label)
		default:
			return nil, fmt.Errorf("topology: node %d has unknown kind %q", i, node.Kind)
		}
		if id != i {
			return nil, fmt.Errorf("topology: node numbering skew at %d", i)
		}
	}
	for _, l := range in.Links {
		if err := n.Connect(l[0], l[1]); err != nil {
			return nil, fmt.Errorf("topology: link %v: %w", l, err)
		}
	}
	return n, nil
}
