package topology

import "fmt"

// ExpansionReport quantifies what it costs to grow a structure by one order:
// the components that must be purchased, and — the metric ABCCC is designed
// to win — how much of the existing installation must be touched.
type ExpansionReport struct {
	// Before and After are the display names of the two instances.
	Before, After string
	// ServersBefore and ServersAfter are the server populations.
	ServersBefore, ServersAfter int
	// NewServers, NewSwitches, NewLinks count the purchased components.
	NewServers, NewSwitches, NewLinks int
	// PreservedLinks counts existing cables that remain in place;
	// RewiredLinks counts existing cables that must be unplugged or moved.
	PreservedLinks, RewiredLinks int
	// UpgradedServers counts existing servers that need a hardware change
	// (e.g. an additional NIC port, as BCube expansion requires).
	UpgradedServers int
	// ReplacedSwitches counts existing switches that cannot serve in the
	// expanded structure at all (e.g. a fat-tree regrowth needs a larger
	// radix everywhere).
	ReplacedSwitches int
}

// TouchedFraction returns the fraction of pre-existing components (servers,
// switches involved, links) that the expansion modifies: the paper's
// expansion-cost headline.
func (r ExpansionReport) TouchedFraction() float64 {
	existing := r.ServersBefore + r.PreservedLinks + r.RewiredLinks + r.ReplacedSwitches
	if existing == 0 {
		return 0
	}
	return float64(r.UpgradedServers+r.RewiredLinks+r.ReplacedSwitches) / float64(existing)
}

// String summarizes the report for CLI output.
func (r ExpansionReport) String() string {
	return fmt.Sprintf("%s -> %s: +%d servers, +%d switches, +%d links; rewired %d, upgraded %d servers, replaced %d switches (touched %.1f%% of plant)",
		r.Before, r.After, r.NewServers, r.NewSwitches, r.NewLinks,
		r.RewiredLinks, r.UpgradedServers, r.ReplacedSwitches, 100*r.TouchedFraction())
}
