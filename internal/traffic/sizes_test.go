package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSizeDistributionValidation(t *testing.T) {
	tests := []struct {
		name  string
		bytes []int64
		cdf   []float64
	}{
		{name: "empty"},
		{name: "length mismatch", bytes: []int64{1, 2}, cdf: []float64{1}},
		{name: "zero size", bytes: []int64{0, 5}, cdf: []float64{0.5, 1}},
		{name: "non-ascending bytes", bytes: []int64{5, 5}, cdf: []float64{0.5, 1}},
		{name: "descending cdf", bytes: []int64{1, 2}, cdf: []float64{0.9, 0.5}},
		{name: "cdf above one", bytes: []int64{1, 2}, cdf: []float64{0.5, 1.5}},
		{name: "cdf not ending at one", bytes: []int64{1, 2}, cdf: []float64{0.5, 0.9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSizeDistribution("x", tt.bytes, tt.cdf); err == nil {
				t.Error("invalid distribution accepted")
			}
		})
	}
}

func TestBuiltinDistributions(t *testing.T) {
	for _, d := range []*SizeDistribution{WebSearch(), DataMining()} {
		if d.Name() == "" {
			t.Error("unnamed distribution")
		}
		if d.Mean() <= 0 {
			t.Errorf("%s mean = %f", d.Name(), d.Mean())
		}
	}
	// Data mining is far heavier-tailed: its mean dwarfs web search's
	// despite mostly tiny flows.
	if DataMining().Mean() <= WebSearch().Mean() {
		t.Errorf("datamining mean %.0f <= websearch mean %.0f",
			DataMining().Mean(), WebSearch().Mean())
	}
}

func TestSampleWithinSupport(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := WebSearch()
		s := d.Sample(rng)
		return s >= 6<<10 && s <= 30<<20
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleRoughlyMatchesCDF(t *testing.T) {
	// Half of data-mining flows should be <= 100 bytes.
	rng := rand.New(rand.NewSource(9))
	d := DataMining()
	small := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if d.Sample(rng) <= 100 {
			small++
		}
	}
	frac := float64(small) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("P(size<=100B) = %.3f, want ~0.50", frac)
	}
}

func TestApplySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows := Permutation(10, rng)
	ApplySizes(flows, WebSearch(), rng)
	for _, f := range flows {
		if f.Bytes == DefaultFlowBytes && f.Bytes != 1<<20 {
			t.Fatal("sizes not applied")
		}
		if f.Bytes <= 0 {
			t.Fatal("non-positive size")
		}
	}
}
