package traffic

import (
	"fmt"
	"math/rand"
	"sort"
)

// SizeDistribution samples flow sizes from an empirical CDF, the way DCN
// evaluations draw from measured workloads. Two standard distributions from
// the literature ship built in (web-search and data-mining); custom CDFs can
// be constructed with NewSizeDistribution.
type SizeDistribution struct {
	name  string
	bytes []int64   // ascending
	cdf   []float64 // cdf[i] = P(size <= bytes[i]), ascending, ends at 1
}

// NewSizeDistribution builds a distribution from (bytes, cumulative
// probability) points. Probabilities must be ascending and end at 1.
func NewSizeDistribution(name string, bytes []int64, cdf []float64) (*SizeDistribution, error) {
	if len(bytes) == 0 || len(bytes) != len(cdf) {
		return nil, fmt.Errorf("traffic: size distribution needs matching non-empty points")
	}
	for i := range bytes {
		if bytes[i] <= 0 {
			return nil, fmt.Errorf("traffic: non-positive size %d", bytes[i])
		}
		if i > 0 && (bytes[i] <= bytes[i-1] || cdf[i] < cdf[i-1]) {
			return nil, fmt.Errorf("traffic: size distribution points must ascend")
		}
		if cdf[i] < 0 || cdf[i] > 1 {
			return nil, fmt.Errorf("traffic: cdf value %f out of [0,1]", cdf[i])
		}
	}
	if cdf[len(cdf)-1] != 1 {
		return nil, fmt.Errorf("traffic: cdf must end at 1, got %f", cdf[len(cdf)-1])
	}
	return &SizeDistribution{name: name, bytes: bytes, cdf: cdf}, nil
}

// WebSearch returns the web-search workload distribution (DCTCP, SIGCOMM
// 2010, Fig. 4 shape): mostly sub-100 KB queries with a heavy tail of
// multi-MB background flows.
func WebSearch() *SizeDistribution {
	d, err := NewSizeDistribution("websearch",
		[]int64{6 << 10, 13 << 10, 19 << 10, 33 << 10, 133 << 10, 667 << 10, 1333 << 10, 3333 << 10, 6667 << 10, 20 << 20, 30 << 20},
		[]float64{0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1.0})
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return d
}

// DataMining returns the data-mining workload distribution (VL2, SIGCOMM
// 2009 shape): dominated by tiny flows with an extremely heavy tail.
func DataMining() *SizeDistribution {
	d, err := NewSizeDistribution("datamining",
		[]int64{100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30},
		[]float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.0})
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the distribution's label.
func (d *SizeDistribution) Name() string { return d.name }

// Sample draws one flow size.
func (d *SizeDistribution) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.bytes) {
		i = len(d.bytes) - 1
	}
	return d.bytes[i]
}

// Mean returns the distribution's expected flow size.
func (d *SizeDistribution) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, b := range d.bytes {
		mean += float64(b) * (d.cdf[i] - prev)
		prev = d.cdf[i]
	}
	return mean
}

// ApplySizes resamples every flow's byte count from the distribution,
// returning the same slice for chaining.
func ApplySizes(flows []Flow, d *SizeDistribution, rng *rand.Rand) []Flow {
	for i := range flows {
		flows[i].Bytes = d.Sample(rng)
	}
	return flows
}
