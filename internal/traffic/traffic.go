// Package traffic generates the synthetic data-center workloads the paper's
// simulations run on: random permutations, all-to-all, uniform random pairs,
// incast, MapReduce-style shuffle, and hotspot patterns. All generators are
// deterministic given their seed, so every experiment is reproducible.
package traffic

import (
	"fmt"
	"math/rand"
)

// Flow is one logical transfer between two servers, identified by their
// indices into the topology's server list (not raw node ids — patterns are
// topology-agnostic).
type Flow struct {
	// Src and Dst index into Network.Servers().
	Src, Dst int
	// Bytes is the transfer size; generators default it to 1 MB units so
	// relative sizes matter, not absolute ones.
	Bytes int64
	// StartSec is the flow's arrival time; generators default to 0
	// (everything starts together) except Poisson.
	StartSec float64
}

// DefaultFlowBytes is the flow size generators use unless a pattern defines
// its own (1 MB, a typical shuffle chunk).
const DefaultFlowBytes = 1 << 20

// Permutation returns a random permutation workload: every server sends one
// flow to a distinct server (no fixed points unless n == 1).
func Permutation(n int, rng *rand.Rand) []Flow {
	perm := rng.Perm(n)
	// Displace fixed points so every flow crosses the network.
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	flows := make([]Flow, 0, n)
	for src, dst := range perm {
		if src == dst {
			continue // only possible for n == 1
		}
		flows = append(flows, Flow{Src: src, Dst: dst, Bytes: DefaultFlowBytes})
	}
	return flows
}

// AllToAll returns the complete n*(n-1) workload: every ordered pair.
func AllToAll(n int) []Flow {
	flows := make([]Flow, 0, n*(n-1))
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				flows = append(flows, Flow{Src: src, Dst: dst, Bytes: DefaultFlowBytes})
			}
		}
	}
	return flows
}

// Uniform returns `count` flows with independently uniform random distinct
// endpoints.
func Uniform(n, count int, rng *rand.Rand) []Flow {
	if n < 2 {
		return nil
	}
	flows := make([]Flow, count)
	for i := range flows {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		flows[i] = Flow{Src: src, Dst: dst, Bytes: DefaultFlowBytes}
	}
	return flows
}

// Incast returns a fan-in workload: `fanin` distinct random senders all
// transmit to the same target (a partition-aggregate pattern).
func Incast(n, target, fanin int, rng *rand.Rand) ([]Flow, error) {
	if target < 0 || target >= n {
		return nil, fmt.Errorf("traffic: incast target %d out of %d servers", target, n)
	}
	if fanin > n-1 {
		return nil, fmt.Errorf("traffic: fan-in %d exceeds %d possible senders", fanin, n-1)
	}
	senders := rng.Perm(n)
	flows := make([]Flow, 0, fanin)
	for _, s := range senders {
		if s == target {
			continue
		}
		flows = append(flows, Flow{Src: s, Dst: target, Bytes: DefaultFlowBytes})
		if len(flows) == fanin {
			break
		}
	}
	return flows, nil
}

// Shuffle returns a MapReduce shuffle: every one of the `mappers` first
// servers sends one flow to every one of the `reducers` servers chosen at
// random from the rest.
func Shuffle(n, mappers, reducers int, rng *rand.Rand) ([]Flow, error) {
	if mappers+reducers > n {
		return nil, fmt.Errorf("traffic: %d mappers + %d reducers exceed %d servers", mappers, reducers, n)
	}
	perm := rng.Perm(n)
	maps := perm[:mappers]
	reds := perm[mappers : mappers+reducers]
	flows := make([]Flow, 0, mappers*reducers)
	for _, m := range maps {
		for _, r := range reds {
			flows = append(flows, Flow{Src: m, Dst: r, Bytes: DefaultFlowBytes})
		}
	}
	return flows, nil
}

// Poisson returns an open-loop arrival process: flows arrive with
// exponential interarrival times at `ratePerSec` for `durationSec`, each
// between uniform random distinct endpoints — the standard way DCN
// evaluations drive latency-vs-load curves.
func Poisson(n int, ratePerSec, durationSec float64, rng *rand.Rand) ([]Flow, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: poisson needs >= 2 servers")
	}
	if ratePerSec <= 0 || durationSec <= 0 {
		return nil, fmt.Errorf("traffic: poisson rate and duration must be positive")
	}
	var flows []Flow
	for t := rng.ExpFloat64() / ratePerSec; t < durationSec; t += rng.ExpFloat64() / ratePerSec {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, Flow{Src: src, Dst: dst, Bytes: DefaultFlowBytes, StartSec: t})
	}
	return flows, nil
}

// Hotspot returns a workload where `count` random senders target a small set
// of `spots` hot servers, modeling skewed popularity.
func Hotspot(n, spots, count int, rng *rand.Rand) ([]Flow, error) {
	if spots < 1 || spots >= n {
		return nil, fmt.Errorf("traffic: %d hot spots out of %d servers", spots, n)
	}
	hot := rng.Perm(n)[:spots]
	flows := make([]Flow, count)
	for i := range flows {
		dst := hot[rng.Intn(spots)]
		src := rng.Intn(n)
		for src == dst {
			src = rng.Intn(n)
		}
		flows[i] = Flow{Src: src, Dst: dst, Bytes: DefaultFlowBytes}
	}
	return flows, nil
}
