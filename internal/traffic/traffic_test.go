package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermutationIsDerangement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		flows := Permutation(n, rng)
		if len(flows) != n {
			return false
		}
		seenSrc := make(map[int]bool, n)
		seenDst := make(map[int]bool, n)
		for _, f := range flows {
			if f.Src == f.Dst || seenSrc[f.Src] || seenDst[f.Dst] {
				return false
			}
			seenSrc[f.Src], seenDst[f.Dst] = true, true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := Permutation(10, rand.New(rand.NewSource(3)))
	b := Permutation(10, rand.New(rand.NewSource(3)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different permutation")
		}
	}
}

func TestAllToAll(t *testing.T) {
	flows := AllToAll(4)
	if len(flows) != 12 {
		t.Fatalf("len = %d, want 12", len(flows))
	}
	seen := map[[2]int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows := Uniform(10, 100, rng)
	if len(flows) != 100 {
		t.Fatalf("len = %d", len(flows))
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Src < 0 || f.Src >= 10 || f.Dst < 0 || f.Dst >= 10 {
			t.Fatalf("bad flow %+v", f)
		}
	}
	if Uniform(1, 5, rng) != nil {
		t.Error("Uniform with 1 server should be nil")
	}
}

func TestIncast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows, err := Incast(10, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5 {
		t.Fatalf("len = %d, want 5", len(flows))
	}
	srcs := map[int]bool{}
	for _, f := range flows {
		if f.Dst != 3 || f.Src == 3 {
			t.Fatalf("bad flow %+v", f)
		}
		if srcs[f.Src] {
			t.Fatal("duplicate sender")
		}
		srcs[f.Src] = true
	}
	if _, err := Incast(10, 10, 3, rng); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := Incast(10, 0, 10, rng); err == nil {
		t.Error("oversized fan-in accepted")
	}
}

func TestShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows, err := Shuffle(20, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 12 {
		t.Fatalf("len = %d, want 12", len(flows))
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("mapper == reducer")
		}
	}
	if _, err := Shuffle(5, 3, 3, rng); err == nil {
		t.Error("overlapping mapper/reducer sets accepted")
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows, err := Hotspot(10, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	dsts := map[int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		dsts[f.Dst] = true
	}
	if len(dsts) > 2 {
		t.Errorf("flows target %d spots, want <= 2", len(dsts))
	}
	if _, err := Hotspot(10, 0, 5, rng); err == nil {
		t.Error("zero spots accepted")
	}
	if _, err := Hotspot(10, 10, 5, rng); err == nil {
		t.Error("all-spots accepted")
	}
}

func TestFlowBytesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range Permutation(5, rng) {
		if f.Bytes != DefaultFlowBytes {
			t.Fatalf("Bytes = %d", f.Bytes)
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows, err := Poisson(16, 100, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expect roughly rate*duration arrivals.
	if len(flows) < 60 || len(flows) > 150 {
		t.Errorf("got %d arrivals for rate 100 x 1s", len(flows))
	}
	last := 0.0
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.StartSec < last || f.StartSec >= 1.0 {
			t.Fatalf("arrival time %f out of order or range", f.StartSec)
		}
		last = f.StartSec
	}
	if _, err := Poisson(1, 10, 1, rng); err == nil {
		t.Error("single server accepted")
	}
	if _, err := Poisson(4, 0, 1, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Poisson(4, 10, 0, rng); err == nil {
		t.Error("zero duration accepted")
	}
}
