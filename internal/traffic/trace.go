package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// traceRecord is the on-disk form of one flow (JSON Lines, one flow per
// line), a stable interchange format so workloads can be saved, edited and
// replayed across simulators.
type traceRecord struct {
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Bytes int64 `json:"bytes"`
}

// WriteTrace writes the workload as JSON Lines.
func WriteTrace(w io.Writer, flows []Flow) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, f := range flows {
		if err := enc.Encode(traceRecord{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes}); err != nil {
			return fmt.Errorf("traffic: write trace flow %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace reads a JSON Lines workload, validating endpoints against the
// given server count (pass 0 to skip the range check).
func ReadTrace(r io.Reader, servers int) ([]Flow, error) {
	dec := json.NewDecoder(r)
	var flows []Flow
	for i := 0; ; i++ {
		var rec traceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("traffic: read trace flow %d: %w", i, err)
		}
		if rec.Src == rec.Dst {
			return nil, fmt.Errorf("traffic: trace flow %d is a self-flow (%d)", i, rec.Src)
		}
		if servers > 0 && (rec.Src < 0 || rec.Src >= servers || rec.Dst < 0 || rec.Dst >= servers) {
			return nil, fmt.Errorf("traffic: trace flow %d endpoints (%d,%d) out of %d servers",
				i, rec.Src, rec.Dst, servers)
		}
		bytes := rec.Bytes
		if bytes <= 0 {
			bytes = DefaultFlowBytes
		}
		flows = append(flows, Flow{Src: rec.Src, Dst: rec.Dst, Bytes: bytes})
	}
	return flows, nil
}
