package traffic

import (
	"math/rand"
	"testing"
)

// Every generator must be a pure function of (parameters, seed): the
// experiment figures and the engine equivalence tests both lean on replaying
// identical workloads. These tests pin that, plus the endpoint invariants
// shared by all patterns.

// generators enumerates every flow generator behind a uniform signature.
var generators = []struct {
	name string
	gen  func(n int, rng *rand.Rand) ([]Flow, error)
}{
	{"Permutation", func(n int, rng *rand.Rand) ([]Flow, error) { return Permutation(n, rng), nil }},
	{"Uniform", func(n int, rng *rand.Rand) ([]Flow, error) { return Uniform(n, 3*n, rng), nil }},
	{"Incast", func(n int, rng *rand.Rand) ([]Flow, error) { return Incast(n, n/2, n/2, rng) }},
	{"Shuffle", func(n int, rng *rand.Rand) ([]Flow, error) { return Shuffle(n, n/4, n/4, rng) }},
	{"Poisson", func(n int, rng *rand.Rand) ([]Flow, error) { return Poisson(n, 50*float64(n), 0.1, rng) }},
	{"Hotspot", func(n int, rng *rand.Rand) ([]Flow, error) { return Hotspot(n, 2, 4*n, rng) }},
}

func TestGeneratorsDeterministicAcrossSeeds(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			for _, seed := range []int64{0, 1, 42, 1 << 40} {
				for _, n := range []int{8, 16, 33} {
					a, err := g.gen(n, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("seed %d n %d: %v", seed, n, err)
					}
					b, err := g.gen(n, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("seed %d n %d: %v", seed, n, err)
					}
					if len(a) != len(b) {
						t.Fatalf("seed %d n %d: %d vs %d flows", seed, n, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("seed %d n %d flow %d: %+v vs %+v", seed, n, i, a[i], b[i])
						}
					}
				}
			}
		})
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	// Different seeds must actually change the workload (all-to-all aside,
	// the patterns are random); a generator ignoring its RNG would silently
	// collapse every trial of an experiment into one.
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			a, err := g.gen(32, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := g.gen(32, rand.New(rand.NewSource(2)))
			if err != nil {
				t.Fatal(err)
			}
			if len(a) == len(b) {
				same := true
				for i := range a {
					if a[i] != b[i] {
						same = false
						break
					}
				}
				if same {
					t.Error("seeds 1 and 2 generated identical workloads")
				}
			}
		})
	}
}

func TestGeneratorEndpointInvariants(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			for _, n := range []int{4, 9, 32} {
				flows, err := g.gen(n, rand.New(rand.NewSource(7)))
				if err != nil {
					t.Fatalf("n %d: %v", n, err)
				}
				if len(flows) == 0 {
					t.Fatalf("n %d: empty workload", n)
				}
				for i, f := range flows {
					if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
						t.Fatalf("n %d flow %d: endpoints %d->%d out of range", n, i, f.Src, f.Dst)
					}
					if f.Src == f.Dst {
						t.Fatalf("n %d flow %d: self flow at %d", n, i, f.Src)
					}
					if f.Bytes <= 0 {
						t.Fatalf("n %d flow %d: non-positive size %d", n, i, f.Bytes)
					}
					if f.StartSec < 0 {
						t.Fatalf("n %d flow %d: negative start %g", n, i, f.StartSec)
					}
				}
			}
		})
	}
}

func TestApplySizesSamplesWithinCDFSupport(t *testing.T) {
	for _, d := range []*SizeDistribution{WebSearch(), DataMining()} {
		t.Run(d.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			flows := ApplySizes(Uniform(16, 2000, rng), d, rng)
			support := make(map[int64]bool, len(d.bytes))
			for _, b := range d.bytes {
				support[b] = true
			}
			min, max := d.bytes[0], d.bytes[len(d.bytes)-1]
			seen := make(map[int64]int)
			for i, f := range flows {
				if f.Bytes < min || f.Bytes > max {
					t.Fatalf("flow %d: size %d outside [%d, %d]", i, f.Bytes, min, max)
				}
				if !support[f.Bytes] {
					t.Fatalf("flow %d: size %d is not a CDF support point", i, f.Bytes)
				}
				seen[f.Bytes]++
			}
			// 2000 draws must spread over the support, not collapse onto one
			// point (the CDF inversion walking the wrong way would do that).
			if len(seen) < len(d.bytes)/2 {
				t.Errorf("only %d of %d support points sampled", len(seen), len(d.bytes))
			}
		})
	}
}

func TestApplySizesDeterministic(t *testing.T) {
	d := WebSearch()
	a := ApplySizes(Uniform(8, 100, rand.New(rand.NewSource(3))), d, rand.New(rand.NewSource(5)))
	b := ApplySizes(Uniform(8, 100, rand.New(rand.NewSource(3))), d, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSampleRespectsCDFQuantiles(t *testing.T) {
	// The smallest support point of WebSearch carries 15% of the mass; over
	// many draws its share must be in that neighborhood.
	d := WebSearch()
	rng := rand.New(rand.NewSource(11))
	const draws = 20000
	small := 0
	for i := 0; i < draws; i++ {
		if d.Sample(rng) == d.bytes[0] {
			small++
		}
	}
	frac := float64(small) / draws
	if frac < 0.13 || frac > 0.17 {
		t.Errorf("smallest size drawn %.3f of the time, want ~0.15", frac)
	}
}
