package traffic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := Permutation(12, rng)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("flow %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		servers int
	}{
		{name: "garbage", in: "not json\n", servers: 10},
		{name: "self flow", in: `{"src":1,"dst":1,"bytes":5}` + "\n", servers: 10},
		{name: "out of range", in: `{"src":1,"dst":99,"bytes":5}` + "\n", servers: 10},
		{name: "negative", in: `{"src":-1,"dst":2,"bytes":5}` + "\n", servers: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(tt.in), tt.servers); err == nil {
				t.Errorf("ReadTrace(%q) succeeded", tt.in)
			}
		})
	}
}

func TestReadTraceDefaultsBytes(t *testing.T) {
	flows, err := ReadTrace(strings.NewReader(`{"src":0,"dst":1}`+"\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Bytes != DefaultFlowBytes {
		t.Errorf("flows = %+v", flows)
	}
}

func TestReadTraceSkipsRangeCheckWhenZero(t *testing.T) {
	flows, err := ReadTrace(strings.NewReader(`{"src":0,"dst":500}`+"\n"), 0)
	if err != nil || len(flows) != 1 {
		t.Errorf("flows = %+v, err = %v", flows, err)
	}
}

func TestReadTraceEmpty(t *testing.T) {
	flows, err := ReadTrace(strings.NewReader(""), 5)
	if err != nil || flows != nil {
		t.Errorf("empty trace: %v, %v", flows, err)
	}
}
